"""System assembly: wire clients, servers, key manager, and authority.

The paper's testbed (Section VI) runs one key manager, four data-store
servers, one key-store server, and one or more clients.  This module
builds that topology either **in-process** (direct calls — the default
for tests, examples, and experiments) or **over TCP** (see
``examples/multi_server_cluster.py``), and gives a convenience facade
(:class:`ReedSystem`) for enrolling users and creating their clients.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.abe.cpabe import AttributeAuthority
from repro.chunking.chunker import ChunkingSpec
from repro.core.client import REEDClient
from repro.core.server import REEDServer, StorageService
from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.keyreg.rsa_keyreg import KeyRegressionOwner
from repro.mle.cache import MLEKeyCache
from repro.mle.keymanager import KeyManager
from repro.mle.server_aided import (
    DEFAULT_BATCH_SIZE,
    LocalKeyManagerChannel,
    ServerAidedKeyClient,
)
from repro.obs import scope as obs_scope
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.backend import MemoryBackend
from repro.storage.datastore import DataStore, DataStoreStats
from repro.storage.keystore import KeyStore
from repro.storage.sharding import DEFAULT_VNODES, HashRing
from repro.util.errors import (
    ConfigurationError,
    NotFoundError,
    ProtocolError,
    StorageError,
)

#: RSA modulus size used by default in tests and experiments.  The paper
#: uses 1024-bit RSA; 512 bits keeps in-process experiment setup fast
#: while exercising identical code paths.  Pass ``key_bits=1024`` for the
#: paper configuration.
FAST_KEY_BITS = 512

#: Paper topology: four data-store servers (the fifth runs the key store).
DEFAULT_DATA_SERVERS = 4


#: Transport-level exception classes that mean "the node, not the
#: request, failed" — these mark the node down on the ring and re-route
#: the work to its replicas.  Semantic errors (NotFound, Integrity, …)
#: never do.
_NODE_FAILURES = (ProtocolError, OSError)

#: Sentinel distinguishing "no replica answered yet" from a real ``None``
#: status in the per-item quorum fold.
_UNSET = object()


class ShardedStorageService:
    """Client-side striping over several storage services.

    Chunks are routed by fingerprint so global deduplication still works
    with any number of clients; recipes and stub files are routed by file
    identifier through the **same** consistent-hash ring (the old
    byte-sum file hash collided anagram ids).  Works identically over
    in-process servers and RPC stubs.

    With ``replicas`` R > 1 every key is written to its first R owners
    on the ring and a write succeeds once ``write_quorum`` W of them
    acknowledged; reads prefer the primary and fall back through the
    remaining owners on a miss or node failure.  Transport-level
    failures mark the node down (skipped until :meth:`probe_nodes` or
    :meth:`mark_up` revives it); the repair daemon
    (:class:`repro.storage.repair.ReplicaRepairer`) restores full
    replication afterwards.
    """

    #: Round trips are reported through :mod:`repro.obs.scope`, so
    #: callers can attribute them to one operation without diffing.
    supports_attribution = True

    def __init__(
        self,
        services: list[StorageService],
        metrics: MetricsRegistry | None = None,
        fetch_workers: int | None = None,
        replicas: int = 1,
        write_quorum: int | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if not services:
            raise ConfigurationError("need at least one storage service")
        if replicas < 1:
            raise ConfigurationError("need at least one replica")
        if replicas > len(services):
            raise ConfigurationError(
                f"cannot keep {replicas} replicas on {len(services)} node(s)"
            )
        if write_quorum is None:
            write_quorum = 1
        if not 1 <= write_quorum <= replicas:
            raise ConfigurationError(
                f"write quorum {write_quorum} outside 1..{replicas}"
            )
        self.replicas = replicas
        self.write_quorum = write_quorum
        #: Node ids are positional (``node-0``, ``node-1``, …): every
        #: client that lists the same services in the same order computes
        #: identical ring placement with no coordination.
        self._services: dict[str, StorageService] = {}
        self._order: list[str] = []
        self._next_node = 0
        self.ring = HashRing(vnodes=vnodes)
        for service in services:
            self._attach(service)
        #: Sub-service calls issued — each is one RPC round trip when the
        #: services are remote stubs.  Bumped from pool threads during
        #: scatter-gather, hence the lock.
        self.round_trips = 0
        self._trip_lock = threading.Lock()
        if fetch_workers is None:
            fetch_workers = min(len(services), 8)
        if fetch_workers < 1:
            raise ConfigurationError("need at least one fetch worker")
        self.fetch_workers = fetch_workers
        self._fetch_pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Mirrored into the registry (process totals + per-shard routing)
        # and the active attribution scope (per-upload deltas).
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_trips = self.metrics.counter(
            "store_round_trips_total",
            "Storage-layer sub-service calls (RPC round trips when remote).",
        )
        self._m_shard = self.metrics.counter(
            "store_shard_requests_total",
            "Storage-layer calls routed to each shard.",
            labelnames=("shard",),
        )
        self._m_fallbacks = self.metrics.counter(
            "store_read_fallbacks_total",
            "Reads served by a non-preferred replica after a miss/failure.",
        )
        self._m_degraded = self.metrics.counter(
            "store_degraded_writes_total",
            "Writes acknowledged below full replication (quorum still met).",
        )
        self._m_node_failures = self.metrics.counter(
            "store_node_failures_total",
            "Transport-level node failures that marked a shard down.",
        )
        self._m_down = self.metrics.gauge(
            "store_nodes_down",
            "Shards currently marked down on this client's ring.",
        )

    # -- membership ------------------------------------------------------------

    def _attach(self, service: StorageService, node_id: str | None = None) -> str:
        node = node_id if node_id is not None else f"node-{self._next_node}"
        self._next_node += 1
        self.ring.add_node(node)
        self._services[node] = service
        self._order.append(node)
        return node

    def node_ids(self) -> list[str]:
        """Node ids in attach order (the order services were listed)."""
        return list(self._order)

    def add_service(self, service: StorageService, node_id: str | None = None) -> str:
        """Join a node; returns its id.

        Membership changes must be applied in the same order on every
        client of a deployment.  Joining moves ~1/N of ring ownership —
        run :func:`repro.storage.repair.rebalance` with the pre-join
        ring snapshot to migrate exactly those keys.
        """
        return self._attach(service, node_id)

    def remove_service(self, node_id: str) -> StorageService:
        """Leave the ring; data on the departed node is NOT migrated
        automatically — rebalance first."""
        if node_id not in self._services:
            raise ConfigurationError(f"node {node_id!r} is not attached")
        if len(self._order) == 1:
            raise ConfigurationError("cannot remove the last storage node")
        if self.replicas > len(self._order) - 1:
            raise ConfigurationError(
                f"removing {node_id!r} leaves fewer nodes than replicas"
            )
        self.ring.remove_node(node_id)
        self._order.remove(node_id)
        service = self._services.pop(node_id)
        self._update_down_gauge()
        return service

    def mark_down(self, node_id: str) -> None:
        """Manually flag a node unreachable (reads/writes route around it)."""
        self.ring.mark_down(node_id)
        self._update_down_gauge()

    def mark_up(self, node_id: str) -> None:
        self.ring.mark_up(node_id)
        self._update_down_gauge()

    def probe_nodes(self) -> list[str]:
        """Re-check marked-down nodes with one cheap RPC each.

        Returns the node ids revived.  Called by the repair daemon at
        the start of every scan; callers can also invoke it manually
        after restoring a node.
        """
        revived: list[str] = []
        for node in self.ring.down_nodes():
            try:
                self._trip(node)
                self._services[node].chunk_exists_batch([])
            except Exception:  # noqa: BLE001 - still down
                continue
            self.ring.mark_up(node)
            revived.append(node)
        self._update_down_gauge()
        return revived

    def _update_down_gauge(self) -> None:
        self._m_down.set(float(len(self.ring.down_nodes())))

    def _note_failure(self, node: str, exc: Exception) -> bool:
        """Classify an exception; transport failures mark the node down.

        Returns True when the error was a node failure (caller should
        re-route), False for semantic errors (caller should fall back
        per item or surface them).
        """
        if not isinstance(exc, _NODE_FAILURES):
            return False
        if node in self.ring.nodes() and self.ring.is_up(node):
            self.ring.mark_down(node)
            self._m_node_failures.inc()
            self._update_down_gauge()
        return True

    # -- plumbing ---------------------------------------------------------------

    def _trip(self, node: str) -> None:
        with self._trip_lock:
            self.round_trips += 1
        self._m_trips.inc()
        self._m_shard.labels(shard=node).inc()
        obs_scope.add("store_round_trips")

    def _get_fetch_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._fetch_pool is None:
                self._fetch_pool = ThreadPoolExecutor(
                    max_workers=self.fetch_workers,
                    thread_name_prefix="reed-fetch",
                )
            return self._fetch_pool

    def close(self) -> None:
        """Reap the scatter-gather pool; it restarts lazily on next use."""
        with self._pool_lock:
            pool, self._fetch_pool = self._fetch_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    # -- placement -------------------------------------------------------------

    def _owners(self, key: bytes | str) -> list[str]:
        return self.ring.preference(key, self.replicas)

    def _up_owners(self, key: bytes | str) -> list[str]:
        return [node for node in self._owners(key) if self.ring.is_up(node)]

    def shard_for_file(self, file_id: str) -> str:
        """Primary owner of a file id (ring-hashed, anagram-safe)."""
        return self.ring.primary(file_id)

    # -- replicated write/read engines -----------------------------------------

    def _replicated_batch_write(self, keys: list, items: list, call) -> list:
        """Write every item to all its up owners; fold to per-item status.

        ``call(service, sub_items)`` must return one status per item
        (``Exception`` marks a failed item).  The folded status is the
        most-preferred replica's answer when at least ``write_quorum``
        replicas succeeded, else the first error (never raises — the
        per-item batch protocol carries errors as values).
        """
        placements = [self._owners(key) for key in keys]
        per_node: dict[str, list[int]] = {}
        for position, owners in enumerate(placements):
            for node in owners:
                if self.ring.is_up(node):
                    per_node.setdefault(node, []).append(position)
        answers: dict[str, list] = {}
        slots: dict[str, dict[int, int]] = {}
        for node, positions in per_node.items():
            self._trip(node)
            try:
                answers[node] = call(
                    self._services[node], [items[p] for p in positions]
                )
            except Exception as exc:  # noqa: BLE001 - folded per item
                self._note_failure(node, exc)
                answers[node] = [exc] * len(positions)
            slots[node] = {p: i for i, p in enumerate(positions)}
        results: list = []
        for position, owners in enumerate(placements):
            successes = 0
            status: object = _UNSET
            first_error: Exception | None = None
            for node in owners:
                slot = slots.get(node, {}).get(position)
                if slot is None:
                    continue
                answer = answers[node][slot]
                if isinstance(answer, Exception):
                    if first_error is None:
                        first_error = answer
                else:
                    successes += 1
                    if status is _UNSET:
                        status = answer
            if successes >= self.write_quorum:
                if successes < len(owners):
                    self._m_degraded.inc()
                results.append(None if status is _UNSET else status)
            else:
                results.append(
                    first_error
                    or StorageError(
                        f"write quorum {self.write_quorum} not met "
                        f"({successes}/{len(owners)} replicas reachable)"
                    )
                )
        return results

    def _write_meta(self, file_id: str, call, tolerate=()) -> None:
        """Single-item replicated write (recipe/stub put and delete)."""
        successes = 0
        attempted = 0
        first_error: Exception | None = None
        for node in self._owners(file_id):
            if not self.ring.is_up(node):
                continue
            attempted += 1
            self._trip(node)
            try:
                call(self._services[node])
                successes += 1
            except tolerate:
                successes += 1
            except Exception as exc:  # noqa: BLE001 - folded into quorum
                self._note_failure(node, exc)
                if first_error is None:
                    first_error = exc
        if successes < self.write_quorum:
            if first_error is not None:
                raise first_error
            raise StorageError(
                f"write quorum {self.write_quorum} not met for {file_id!r} "
                f"({successes}/{attempted} replicas reachable)"
            )
        if successes < self.replicas:
            self._m_degraded.inc()

    def _read_meta(self, file_id: str, call):
        """Single-item read walking the owners in preference order."""
        last: Exception | None = None
        for node in self._owners(file_id):
            if not self.ring.is_up(node):
                continue
            self._trip(node)
            try:
                value = call(self._services[node])
            except Exception as exc:  # noqa: BLE001 - next replica
                self._note_failure(node, exc)
                last = exc
                continue
            if last is not None:
                self._m_fallbacks.inc()
            return value
        if last is not None:
            raise last
        raise StorageError(f"no live replica holds {file_id!r}")

    # -- chunk API --------------------------------------------------------------

    def chunk_exists_batch(self, fingerprints: list[bytes]) -> list[bool]:
        # One batched existence check per shard touched, never one per
        # fingerprint — the multi-chunk message of the batch protocol.
        # A down/failed preferred owner falls back to the next replica;
        # an unreachable key conservatively reads "absent" (re-uploading
        # is always safe — the server deduplicates).
        flags = [False] * len(fingerprints)
        candidates = [self._up_owners(fp) for fp in fingerprints]
        cursor = [0] * len(fingerprints)
        unresolved = [p for p in range(len(fingerprints)) if candidates[p]]
        while unresolved:
            groups: dict[str, list[int]] = {}
            for position in unresolved:
                options = candidates[position]
                while (
                    cursor[position] < len(options)
                    and not self.ring.is_up(options[cursor[position]])
                ):
                    cursor[position] += 1
                if cursor[position] < len(options):
                    groups.setdefault(
                        options[cursor[position]], []
                    ).append(position)
            retry: list[int] = []
            for node, positions in groups.items():
                self._trip(node)
                try:
                    answers = self._services[node].chunk_exists_batch(
                        [fingerprints[p] for p in positions]
                    )
                except Exception as exc:  # noqa: BLE001 - re-route
                    self._note_failure(node, exc)
                    for position in positions:
                        cursor[position] += 1
                        retry.append(position)
                    continue
                for position, flag in zip(positions, answers):
                    flags[position] = flag
            unresolved = retry
        return flags

    def chunk_put_batch(self, chunks: list[tuple[bytes, bytes]]) -> int:
        if self.replicas == 1:
            groups: dict[str, list[tuple[bytes, bytes]]] = {}
            for fp, data in chunks:
                groups.setdefault(self.ring.primary(fp), []).append((fp, data))
            new = 0
            for node, group in groups.items():
                self._trip(node)
                new += self._services[node].chunk_put_batch(group)
            return new
        # Replicated path: route through the per-item engine so quorum
        # accounting stays exact; any failed item aborts (this legacy
        # entry point has no per-item error channel).
        statuses = self.chunk_put_many(chunks)
        for status in statuses:
            if isinstance(status, Exception):
                raise status
        return sum(1 for status in statuses if status is True)

    def chunk_put_many(
        self, chunks: list[tuple[bytes, bytes]]
    ) -> list[bool | Exception]:
        """Per-item-status batch put, one sub-batch per shard touched.

        With replication each chunk lands on its R owners; the item
        succeeds at write quorum W and reports the most-preferred
        replica's new/dup status.
        """
        return self._replicated_batch_write(
            [fp for fp, _data in chunks],
            chunks,
            lambda service, batch: service.chunk_put_many(batch),
        )

    def chunk_get_batch(self, fingerprints: list[bytes]) -> list[bytes]:
        # Scatter-gather: group by preferred owner, issue all per-shard
        # sub-fetches concurrently, then restore request order by
        # position.  Counters and attribution scopes are preserved by
        # running each sub-fetch under a copy of the caller's context.
        # Items a node cannot serve fall back through the remaining
        # replicas (probing with ``has_many`` to split semantic misses
        # from node failures).
        results: list[bytes | None] = [None] * len(fingerprints)
        candidates = [self._up_owners(fp) for fp in fingerprints]
        cursor = [0] * len(fingerprints)
        unresolved = list(range(len(fingerprints)))
        first_round = True

        def fetch(node: str, positions: list[int]) -> list[bytes]:
            self._trip(node)
            return self._services[node].chunk_get_batch(
                [fingerprints[p] for p in positions]
            )

        while unresolved:
            groups: dict[str, list[int]] = {}
            exhausted: list[int] = []
            for position in unresolved:
                options = candidates[position]
                while (
                    cursor[position] < len(options)
                    and not self.ring.is_up(options[cursor[position]])
                ):
                    cursor[position] += 1
                if cursor[position] >= len(options):
                    exhausted.append(position)
                else:
                    groups.setdefault(
                        options[cursor[position]], []
                    ).append(position)
            if exhausted:
                shown = ", ".join(fingerprints[p].hex() for p in exhausted[:8])
                suffix = (
                    "" if len(exhausted) <= 8 else f" (+{len(exhausted) - 8} more)"
                )
                raise NotFoundError(
                    f"{len(exhausted)} chunk(s) missing from storage: "
                    f"{shown}{suffix}"
                )
            ordered = list(groups.items())
            if first_round and len(ordered) > 1 and self.fetch_workers > 1:
                pool = self._get_fetch_pool()
                futures = [
                    pool.submit(
                        contextvars.copy_context().run, fetch, node, positions
                    )
                    for node, positions in ordered
                ]
                answer_sets: list = []
                for future in futures:
                    try:
                        answer_sets.append(future.result())
                    except Exception as exc:  # noqa: BLE001 - handled below
                        answer_sets.append(exc)
            else:
                answer_sets = []
                for node, positions in ordered:
                    try:
                        answer_sets.append(fetch(node, positions))
                    except Exception as exc:  # noqa: BLE001 - handled below
                        answer_sets.append(exc)
            retry: list[int] = []
            for (node, positions), answer_set in zip(ordered, answer_sets):
                if isinstance(answer_set, Exception):
                    retry.extend(
                        self._salvage_group(
                            node, positions, fingerprints, results, cursor,
                            answer_set,
                        )
                    )
                else:
                    # A short reply (a buggy or truncating shard) must
                    # not silently drop chunks: treat the unanswered
                    # tail as misses on this node and re-route them.
                    for position in positions[len(answer_set):]:
                        cursor[position] += 1
                        retry.append(position)
                    for position, data in zip(positions, answer_set):
                        results[position] = data
                        if cursor[position] > 0:
                            self._m_fallbacks.inc()
            unresolved = retry
            first_round = False
        return [data for data in results if data is not None]

    def _salvage_group(
        self,
        node: str,
        positions: list[int],
        fingerprints: list[bytes],
        results: list,
        cursor: list[int],
        error: Exception,
    ) -> list[int]:
        """Recover from one failed ``chunk_get_batch`` sub-fetch.

        A node failure re-routes every item to its next replica.  A
        semantic failure (some fingerprint missing on this node) probes
        ``has_many`` to learn which items the node *does* hold, fetches
        those, and re-routes only the misses.  Returns the positions
        still unresolved.
        """
        if self._note_failure(node, error):
            for position in positions:
                cursor[position] += 1
            return list(positions)
        try:
            self._trip(node)
            held = self._services[node].chunk_exists_batch(
                [fingerprints[p] for p in positions]
            )
        except Exception as exc:  # noqa: BLE001 - node died mid-salvage
            self._note_failure(node, exc)
            for position in positions:
                cursor[position] += 1
            return list(positions)
        have = [p for p, flag in zip(positions, held) if flag]
        lack = [p for p, flag in zip(positions, held) if not flag]
        if have:
            try:
                self._trip(node)
                fetched = self._services[node].chunk_get_batch(
                    [fingerprints[p] for p in have]
                )
            except Exception as exc:  # noqa: BLE001 - node died mid-salvage
                self._note_failure(node, exc)
                lack = list(positions)
            else:
                for position, data in zip(have, fetched):
                    results[position] = data
                    if cursor[position] > 0:
                        self._m_fallbacks.inc()
        for position in lack:
            cursor[position] += 1
        return lack

    def chunk_release_batch(self, fingerprints: list[bytes]) -> None:
        """Replicated release: every up owner drops one reference.

        One node's failure never aborts the other owners' sub-batches.
        A replica that never held a chunk (degraded write, or a wiped
        node the repair daemon refilled) counts as released — the
        server tolerates missing fingerprints item by item — and a
        transport failure marks the node down and moves on; the
        references it leaks are GC debt, not data loss.  A chunk raises
        (after every node was attempted) only when fewer than
        ``write_quorum`` owners acknowledged its release, mirroring the
        in-process :meth:`ShardedDataStore.release_chunk` semantics.
        """
        placements = [self._owners(fp) for fp in fingerprints]
        per_node: dict[str, list[int]] = {}
        for position, owners in enumerate(placements):
            for node in owners:
                if self.ring.is_up(node):
                    per_node.setdefault(node, []).append(position)
        successes = [0] * len(fingerprints)
        errors: list[Exception | None] = [None] * len(fingerprints)
        for node, positions in per_node.items():
            self._trip(node)
            try:
                self._services[node].chunk_release_batch(
                    [fingerprints[p] for p in positions]
                )
            except NotFoundError:
                # A pre-tolerance server aborts its sub-batch at the
                # first fingerprint it never held; everything it does
                # hold before that point was released, and a missing
                # replica needs no release — count the node as done.
                pass
            except Exception as exc:  # noqa: BLE001 - folded into quorum
                self._note_failure(node, exc)
                for position in positions:
                    if errors[position] is None:
                        errors[position] = exc
                continue
            for position in positions:
                successes[position] += 1
        for position, owners in enumerate(placements):
            if successes[position] >= self.write_quorum:
                if successes[position] < self.replicas:
                    self._m_degraded.inc()
                continue
            raise errors[position] or StorageError(
                f"write quorum {self.write_quorum} not met releasing "
                f"{fingerprints[position].hex()} "
                f"({successes[position]}/{len(owners)} replicas up)"
            )

    # -- recipes and stub files --------------------------------------------------

    def recipe_put(self, file_id: str, data: bytes) -> None:
        self._write_meta(
            file_id, lambda service: service.recipe_put(file_id, data)
        )

    def recipe_get(self, file_id: str) -> bytes:
        return self._read_meta(
            file_id, lambda service: service.recipe_get(file_id)
        )

    def recipe_delete(self, file_id: str) -> None:
        self._write_meta(
            file_id,
            lambda service: service.recipe_delete(file_id),
            tolerate=(NotFoundError,),
        )

    def recipe_list(self) -> list[str]:
        names: set[str] = set()
        for node in self._order:
            if not self.ring.is_up(node):
                continue
            self._trip(node)
            names.update(self._services[node].recipe_list())
        return sorted(names)

    def stub_put(self, file_id: str, data: bytes) -> None:
        self._write_meta(
            file_id, lambda service: service.stub_put(file_id, data)
        )

    def stub_get(self, file_id: str) -> bytes:
        return self._read_meta(
            file_id, lambda service: service.stub_get(file_id)
        )

    def stub_delete(self, file_id: str) -> None:
        self._write_meta(
            file_id,
            lambda service: service.stub_delete(file_id),
            tolerate=(NotFoundError,),
        )

    # -- batched metadata (rekey/delete pipelines) ----------------------------

    def _scatter_meta_puts(
        self, method: str, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        """One per-item-status sub-batch per shard touched, file-routed."""
        return self._replicated_batch_write(
            [file_id for file_id, _data in items],
            items,
            lambda service, batch: getattr(service, method)(batch),
        )

    def _scatter_meta_gets(
        self, method: str, file_ids: list[str]
    ) -> list[bytes | Exception]:
        """Concurrent per-shard sub-fetches, like :meth:`chunk_get_batch`.

        Per-item failures (missing file on one shard) come back in place
        after falling back through the file's replicas; they never abort
        the other shards' sub-batches.
        """
        results: list[bytes | Exception | None] = [None] * len(file_ids)
        candidates = [self._up_owners(f) for f in file_ids]
        cursor = [0] * len(file_ids)
        last_error: list[Exception | None] = [None] * len(file_ids)
        unresolved = list(range(len(file_ids)))
        first_round = True

        def fetch(node: str, positions: list[int]) -> list:
            self._trip(node)
            return getattr(self._services[node], method)(
                [file_ids[p] for p in positions]
            )

        while unresolved:
            groups: dict[str, list[int]] = {}
            for position in unresolved:
                options = candidates[position]
                while (
                    cursor[position] < len(options)
                    and not self.ring.is_up(options[cursor[position]])
                ):
                    cursor[position] += 1
                if cursor[position] >= len(options):
                    results[position] = last_error[position] or NotFoundError(
                        f"no live replica holds {file_ids[position]!r}"
                    )
                else:
                    groups.setdefault(
                        options[cursor[position]], []
                    ).append(position)
            ordered = list(groups.items())
            if first_round and len(ordered) > 1 and self.fetch_workers > 1:
                pool = self._get_fetch_pool()
                futures = [
                    pool.submit(
                        contextvars.copy_context().run, fetch, node, positions
                    )
                    for node, positions in ordered
                ]
                answer_sets: list = []
                for future in futures:
                    try:
                        answer_sets.append(future.result())
                    except Exception as exc:  # noqa: BLE001 - handled below
                        answer_sets.append(exc)
            else:
                answer_sets = []
                for node, positions in ordered:
                    try:
                        answer_sets.append(fetch(node, positions))
                    except Exception as exc:  # noqa: BLE001 - handled below
                        answer_sets.append(exc)
            retry: list[int] = []
            for (node, positions), answer_set in zip(ordered, answer_sets):
                if isinstance(answer_set, Exception):
                    self._note_failure(node, answer_set)
                    for position in positions:
                        last_error[position] = answer_set
                        cursor[position] += 1
                        retry.append(position)
                    continue
                for position, answer in zip(positions, answer_set):
                    if isinstance(answer, Exception):
                        last_error[position] = answer
                        cursor[position] += 1
                        retry.append(position)
                    else:
                        results[position] = answer
                        if cursor[position] > 0:
                            self._m_fallbacks.inc()
            unresolved = retry
            first_round = False
        return results  # type: ignore[return-value]

    def recipe_put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        return self._scatter_meta_puts("recipe_put_many", items)

    def recipe_get_many(self, file_ids: list[str]) -> list[bytes | Exception]:
        return self._scatter_meta_gets("recipe_get_many", file_ids)

    def stub_put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        return self._scatter_meta_puts("stub_put_many", items)

    def stub_get_many(self, file_ids: list[str]) -> list[bytes | Exception]:
        return self._scatter_meta_gets("stub_get_many", file_ids)

    def meta_delete_many(self, file_ids: list[str]) -> list[None | Exception]:
        """Replicated per-item delete: an item succeeds when every
        reachable owner deleted it (a replica that never held the file
        counts as deleted)."""
        return self._replicated_batch_write(
            file_ids,
            file_ids,
            lambda service, batch: [
                None if isinstance(answer, NotFoundError) else answer
                for answer in service.meta_delete_many(batch)
            ],
        )

    def flush(self) -> None:
        for node in self._order:
            if not self.ring.is_up(node):
                continue
            self._trip(node)
            self._services[node].flush()

    # -- compaction GC -------------------------------------------------------

    def _gc_fanout(self, op) -> dict:
        """Apply a per-node gc call on every up node; sum the counters
        and recompute the aggregate dead-space ratio."""
        total: dict = {}
        reached = 0
        for node in self._order:
            if not self.ring.is_up(node):
                continue
            self._trip(node)
            status = op(self._services[node])
            reached += 1
            for name, value in status.items():
                total[name] = total.get(name, 0) + value
        live = total.get("live_bytes", 0)
        dead = total.get("dead_bytes", 0)
        accounted = live + dead
        total["dead_space_ratio"] = dead / accounted if accounted else 0.0
        if reached:
            # Summing thresholds is meaningless; report the nodes' mean.
            total["threshold"] = total.get("threshold", 0.0) / reached
        return total

    def gc_status(self) -> dict:
        """Cluster-wide dead-space accounting (summed over up nodes)."""
        return self._gc_fanout(lambda service: service.gc_status())

    def gc_run(self, threshold: float | None = None) -> dict:
        """Run a compaction pass on every up node; summed status."""
        return self._gc_fanout(lambda service: service.gc_run(threshold))

    # -- per-node access (repair daemon / rebalancer) ---------------------------

    def node_service(self, node_id: str) -> StorageService:
        if node_id not in self._services:
            raise ConfigurationError(f"node {node_id!r} is not attached")
        return self._services[node_id]

    def node_chunk_list(self, node_id: str) -> list[bytes]:
        self._trip(node_id)
        return self.node_service(node_id).chunk_list()

    def node_has_many(self, node_id: str, fingerprints: list[bytes]) -> list[bool]:
        self._trip(node_id)
        return self.node_service(node_id).chunk_exists_batch(fingerprints)

    def node_get_many(self, node_id: str, fingerprints: list[bytes]) -> list[bytes]:
        self._trip(node_id)
        return self.node_service(node_id).chunk_get_batch(fingerprints)

    def node_put_many(
        self, node_id: str, chunks: list[tuple[bytes, bytes]]
    ) -> None:
        self._trip(node_id)
        for status in self.node_service(node_id).chunk_put_many(chunks):
            if isinstance(status, Exception):
                raise status

    def node_refcounts(self, node_id: str, fingerprints: list[bytes]) -> list[int]:
        self._trip(node_id)
        return self.node_service(node_id).chunk_refcount_batch(fingerprints)

    def node_addref_many(
        self, node_id: str, refs: list[tuple[bytes, int]]
    ) -> None:
        self._trip(node_id)
        self.node_service(node_id).chunk_addref_batch(refs)

    def node_recipe_list(self, node_id: str) -> list[str]:
        self._trip(node_id)
        return self.node_service(node_id).recipe_list()

    def node_recipe_get(self, node_id: str, file_id: str) -> bytes:
        self._trip(node_id)
        return self.node_service(node_id).recipe_get(file_id)

    def node_recipe_put(self, node_id: str, file_id: str, data: bytes) -> None:
        self._trip(node_id)
        self.node_service(node_id).recipe_put(file_id, data)

    def node_stub_list(self, node_id: str) -> list[str]:
        self._trip(node_id)
        return self.node_service(node_id).stub_list()

    def node_stub_get(self, node_id: str, file_id: str) -> bytes:
        self._trip(node_id)
        return self.node_service(node_id).stub_get(file_id)

    def node_stub_put(self, node_id: str, file_id: str, data: bytes) -> None:
        self._trip(node_id)
        self.node_service(node_id).stub_put(file_id, data)

    def stats(self) -> dict:
        """Round-trip counter for observability.

        .. deprecated:: prefer the registry series
           (``store_round_trips_total``, ``store_shard_requests_total``);
           this dict remains as a per-instance view.
        """
        return {
            "round_trips": self.round_trips,
            "services": len(self._services),
            "replicas": self.replicas,
            "write_quorum": self.write_quorum,
            "nodes_down": len(self.ring.down_nodes()),
        }


@dataclass
class ReedSystem:
    """A fully wired REED deployment plus user enrollment.

    Create one with :func:`build_system`, enroll users with
    :meth:`new_client`, and drive uploads/downloads/rekeys through the
    returned :class:`~repro.core.client.REEDClient` objects.
    """

    key_manager: KeyManager
    authority: AttributeAuthority
    servers: list[REEDServer]
    keystore: KeyStore
    storage: StorageService
    scheme: str = "enhanced"
    cipher: SymmetricCipher | None = None
    chunking: ChunkingSpec | None = None
    key_batch_size: int = DEFAULT_BATCH_SIZE
    rng: RandomSource = SYSTEM_RANDOM
    keyreg_bits: int = FAST_KEY_BITS
    _owners: dict[str, KeyRegressionOwner] = field(default_factory=dict)

    def new_client(
        self,
        user_id: str,
        owner: bool = True,
        cache_bytes: int | None = None,
        scheme: str | None = None,
        encryption_threads: int | None = None,
        encryption_workers: int | None = None,
        chunk_cache_bytes: int | None = None,
    ) -> REEDClient:
        """Enroll a user and build their client.

        ``owner=False`` creates a read-only participant (no derivation
        keypair); ``cache_bytes`` sizes the MLE key cache (None disables
        caching, mirroring the paper's cache on/off experiments).
        ``encryption_workers`` defaults to one worker per CPU (capped);
        ``encryption_threads`` is its back-compat alias.
        ``chunk_cache_bytes`` enables the client-side trimmed-package
        read cache (None disables it).
        """
        if owner and user_id in self._owners:
            raise ConfigurationError(f"user {user_id!r} already enrolled as owner")
        key_client = ServerAidedKeyClient(
            LocalKeyManagerChannel(self.key_manager),
            client_id=user_id,
            cache=MLEKeyCache(cache_bytes) if cache_bytes else None,
            batch_size=self.key_batch_size,
            rng=self.rng,
        )
        keyreg_owner = None
        if owner:
            keyreg_owner = KeyRegressionOwner(key_bits=self.keyreg_bits, rng=self.rng)
            self._owners[user_id] = keyreg_owner
        return REEDClient(
            user_id=user_id,
            key_client=key_client,
            storage=self.storage,
            keystore=self.keystore,
            private_access_key=self.authority.issue_private_key(user_id),
            wrap_keys_provider=self.authority.wrap_keys_for,
            keyreg_owner=keyreg_owner,
            scheme=scheme or self.scheme,
            cipher=self.cipher,
            chunking=self.chunking,
            encryption_threads=encryption_threads,
            encryption_workers=encryption_workers,
            chunk_cache_bytes=chunk_cache_bytes,
            rng=self.rng,
        )

    @property
    def storage_stats(self) -> DataStoreStats:
        """Aggregate storage accounting across all data servers."""
        total = DataStoreStats()
        for server in self.servers:
            stats = server.stats
            total.logical_bytes += stats.logical_bytes
            total.physical_bytes += stats.physical_bytes
            total.stub_bytes += stats.stub_bytes
            total.chunks_received += stats.chunks_received
            total.chunks_stored += stats.chunks_stored
            total.container_payload_bytes += stats.container_payload_bytes
            total.container_compressed_bytes += stats.container_compressed_bytes
        return total


def build_system(
    num_data_servers: int = DEFAULT_DATA_SERVERS,
    scheme: str = "enhanced",
    cipher_name: str | None = None,
    chunking: ChunkingSpec | None = None,
    key_bits: int = FAST_KEY_BITS,
    key_batch_size: int = DEFAULT_BATCH_SIZE,
    rate_limit: float | None = None,
    rng: RandomSource | None = None,
    backends: list | None = None,
    container_bytes: int | None = None,
    replicas: int = 1,
    write_quorum: int | None = None,
) -> ReedSystem:
    """Build an in-process REED deployment with the paper's topology.

    ``backends`` optionally supplies one :class:`BlobBackend` per data
    server (e.g. :class:`DirectoryBackend` for durable storage); memory
    backends are used by default.  ``replicas``/``write_quorum`` configure
    ring replication across the data servers (R=1 keeps the paper's
    plain striping).
    """
    if num_data_servers < 1:
        raise ConfigurationError("need at least one data server")
    rng = rng or SYSTEM_RANDOM
    cipher = get_cipher(cipher_name)
    km_kwargs = {}
    if rate_limit is not None:
        # Scale the burst with the configured rate so a small rate limit
        # actually limits (the default burst is sized for the default rate).
        km_kwargs["rate_limit"] = rate_limit
        km_kwargs["burst"] = max(rate_limit, 1.0)
    key_manager = KeyManager(key_bits=key_bits, rng=rng, **km_kwargs)
    authority = AttributeAuthority(rng=rng)
    if backends is None:
        backends = [MemoryBackend() for _ in range(num_data_servers)]
    if len(backends) != num_data_servers:
        raise ConfigurationError("one backend per data server required")
    store_kwargs = {}
    if container_bytes is not None:
        store_kwargs["container_bytes"] = container_bytes
    servers = [REEDServer(DataStore(backend, **store_kwargs)) for backend in backends]
    storage: StorageService
    if num_data_servers == 1 and replicas == 1:
        storage = servers[0]
    else:
        storage = ShardedStorageService(
            list(servers), replicas=replicas, write_quorum=write_quorum
        )
    return ReedSystem(
        key_manager=key_manager,
        authority=authority,
        servers=servers,
        keystore=KeyStore(),
        storage=storage,
        scheme=scheme,
        cipher=cipher,
        chunking=chunking,
        key_batch_size=key_batch_size,
        rng=rng,
        keyreg_bits=key_bits,
    )
