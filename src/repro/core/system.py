"""System assembly: wire clients, servers, key manager, and authority.

The paper's testbed (Section VI) runs one key manager, four data-store
servers, one key-store server, and one or more clients.  This module
builds that topology either **in-process** (direct calls — the default
for tests, examples, and experiments) or **over TCP** (see
``examples/multi_server_cluster.py``), and gives a convenience facade
(:class:`ReedSystem`) for enrolling users and creating their clients.
"""

from __future__ import annotations

import contextvars
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.abe.cpabe import AttributeAuthority
from repro.chunking.chunker import ChunkingSpec
from repro.core.client import REEDClient
from repro.core.server import REEDServer, StorageService
from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.keyreg.rsa_keyreg import KeyRegressionOwner
from repro.mle.cache import MLEKeyCache
from repro.mle.keymanager import KeyManager
from repro.mle.server_aided import (
    DEFAULT_BATCH_SIZE,
    LocalKeyManagerChannel,
    ServerAidedKeyClient,
)
from repro.obs import scope as obs_scope
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.backend import MemoryBackend
from repro.storage.datastore import DataStore, DataStoreStats
from repro.storage.keystore import KeyStore
from repro.util.errors import ConfigurationError, NotFoundError

#: RSA modulus size used by default in tests and experiments.  The paper
#: uses 1024-bit RSA; 512 bits keeps in-process experiment setup fast
#: while exercising identical code paths.  Pass ``key_bits=1024`` for the
#: paper configuration.
FAST_KEY_BITS = 512

#: Paper topology: four data-store servers (the fifth runs the key store).
DEFAULT_DATA_SERVERS = 4


class ShardedStorageService:
    """Client-side striping over several storage services.

    Chunks are routed by fingerprint so global deduplication still works
    with any number of clients; recipes and stub files are routed by file
    identifier.  Works identically over in-process servers and RPC stubs.
    """

    #: Round trips are reported through :mod:`repro.obs.scope`, so
    #: callers can attribute them to one operation without diffing.
    supports_attribution = True

    def __init__(
        self,
        services: list[StorageService],
        metrics: MetricsRegistry | None = None,
        fetch_workers: int | None = None,
    ) -> None:
        if not services:
            raise ConfigurationError("need at least one storage service")
        self._services = services
        #: Sub-service calls issued — each is one RPC round trip when the
        #: services are remote stubs.  Bumped from pool threads during
        #: scatter-gather, hence the lock.
        self.round_trips = 0
        self._trip_lock = threading.Lock()
        if fetch_workers is None:
            fetch_workers = min(len(services), 8)
        if fetch_workers < 1:
            raise ConfigurationError("need at least one fetch worker")
        self.fetch_workers = fetch_workers
        self._fetch_pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        # Mirrored into the registry (process totals + per-shard routing)
        # and the active attribution scope (per-upload deltas).
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_trips = self.metrics.counter(
            "store_round_trips_total",
            "Storage-layer sub-service calls (RPC round trips when remote).",
        )
        self._m_shard = self.metrics.counter(
            "store_shard_requests_total",
            "Storage-layer calls routed to each shard.",
            labelnames=("shard",),
        )

    def _trip(self, shard: int) -> None:
        with self._trip_lock:
            self.round_trips += 1
        self._m_trips.inc()
        self._m_shard.labels(shard=str(shard)).inc()
        obs_scope.add("store_round_trips")

    def _get_fetch_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._fetch_pool is None:
                self._fetch_pool = ThreadPoolExecutor(
                    max_workers=self.fetch_workers,
                    thread_name_prefix="reed-fetch",
                )
            return self._fetch_pool

    def close(self) -> None:
        """Reap the scatter-gather pool; it restarts lazily on next use."""
        with self._pool_lock:
            pool, self._fetch_pool = self._fetch_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _index_for(self, fingerprint: bytes) -> int:
        return int.from_bytes(fingerprint[:8], "big") % len(self._services)

    def _for_chunk(self, fingerprint: bytes) -> StorageService:
        return self._services[self._index_for(fingerprint)]

    def _file_index(self, file_id: str) -> int:
        return sum(file_id.encode("utf-8")) % len(self._services)

    def _for_file(self, file_id: str) -> StorageService:
        return self._services[self._file_index(file_id)]

    def _group_positions(self, fingerprints: list[bytes]) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for position, fp in enumerate(fingerprints):
            groups.setdefault(self._index_for(fp), []).append(position)
        return groups

    def chunk_exists_batch(self, fingerprints: list[bytes]) -> list[bool]:
        # One batched existence check per shard touched, never one per
        # fingerprint — the multi-chunk message of the batch protocol.
        flags = [False] * len(fingerprints)
        for index, positions in self._group_positions(fingerprints).items():
            self._trip(index)
            answers = self._services[index].chunk_exists_batch(
                [fingerprints[p] for p in positions]
            )
            for position, flag in zip(positions, answers):
                flags[position] = flag
        return flags

    def chunk_put_batch(self, chunks: list[tuple[bytes, bytes]]) -> int:
        groups: dict[int, list[tuple[bytes, bytes]]] = {}
        for fp, data in chunks:
            groups.setdefault(self._index_for(fp), []).append((fp, data))
        new = 0
        for index, group in groups.items():
            self._trip(index)
            new += self._services[index].chunk_put_batch(group)
        return new

    def chunk_put_many(
        self, chunks: list[tuple[bytes, bytes]]
    ) -> list[bool | Exception]:
        """Per-item-status batch put, one sub-batch per shard touched."""
        statuses: list[bool | Exception] = [False] * len(chunks)
        groups = self._group_positions([fp for fp, _data in chunks])
        for index, positions in groups.items():
            self._trip(index)
            answers = self._services[index].chunk_put_many(
                [chunks[p] for p in positions]
            )
            for position, status in zip(positions, answers):
                statuses[position] = status
        return statuses

    def chunk_get_batch(self, fingerprints: list[bytes]) -> list[bytes]:
        # Scatter-gather: group by shard, issue all per-shard sub-fetches
        # concurrently, then restore request order by position.  Counters
        # and attribution scopes are preserved by running each sub-fetch
        # under a copy of the caller's context.
        results: list[bytes | None] = [None] * len(fingerprints)
        groups = self._group_positions(fingerprints)

        def fetch(index: int, positions: list[int]) -> list[bytes]:
            self._trip(index)
            return self._services[index].chunk_get_batch(
                [fingerprints[p] for p in positions]
            )

        if len(groups) <= 1 or self.fetch_workers == 1:
            for index, positions in groups.items():
                for position, data in zip(positions, fetch(index, positions)):
                    results[position] = data
        else:
            pool = self._get_fetch_pool()
            ordered = list(groups.items())
            futures = [
                pool.submit(
                    contextvars.copy_context().run, fetch, index, positions
                )
                for index, positions in ordered
            ]
            for (index, positions), future in zip(ordered, futures):
                for position, data in zip(positions, future.result()):
                    results[position] = data
        missing = [
            fingerprints[position]
            for position, data in enumerate(results)
            if data is None
        ]
        if missing:
            shown = ", ".join(fp.hex() for fp in missing[:8])
            suffix = "" if len(missing) <= 8 else f" (+{len(missing) - 8} more)"
            raise NotFoundError(
                f"{len(missing)} chunk(s) missing from storage: {shown}{suffix}"
            )
        return [data for data in results if data is not None]

    def chunk_release_batch(self, fingerprints: list[bytes]) -> None:
        for index, positions in self._group_positions(fingerprints).items():
            self._trip(index)
            self._services[index].chunk_release_batch(
                [fingerprints[p] for p in positions]
            )

    def recipe_put(self, file_id: str, data: bytes) -> None:
        self._trip(self._file_index(file_id))
        self._for_file(file_id).recipe_put(file_id, data)

    def recipe_get(self, file_id: str) -> bytes:
        self._trip(self._file_index(file_id))
        return self._for_file(file_id).recipe_get(file_id)

    def recipe_delete(self, file_id: str) -> None:
        self._trip(self._file_index(file_id))
        self._for_file(file_id).recipe_delete(file_id)

    def recipe_list(self) -> list[str]:
        names: list[str] = []
        for index, service in enumerate(self._services):
            self._trip(index)
            names.extend(service.recipe_list())
        return sorted(names)

    def stub_put(self, file_id: str, data: bytes) -> None:
        self._trip(self._file_index(file_id))
        self._for_file(file_id).stub_put(file_id, data)

    def stub_get(self, file_id: str) -> bytes:
        self._trip(self._file_index(file_id))
        return self._for_file(file_id).stub_get(file_id)

    def stub_delete(self, file_id: str) -> None:
        self._trip(self._file_index(file_id))
        self._for_file(file_id).stub_delete(file_id)

    # -- batched metadata (rekey/delete pipelines) ----------------------------

    def _file_positions(self, file_ids: list[str]) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for position, file_id in enumerate(file_ids):
            groups.setdefault(self._file_index(file_id), []).append(position)
        return groups

    def _scatter_meta_puts(
        self, method: str, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        """One per-item-status sub-batch per shard touched, file-routed."""
        statuses: list[None | Exception] = [None] * len(items)
        groups = self._file_positions([file_id for file_id, _data in items])
        for index, positions in groups.items():
            self._trip(index)
            answers = getattr(self._services[index], method)(
                [items[p] for p in positions]
            )
            for position, status in zip(positions, answers):
                statuses[position] = status
        return statuses

    def _scatter_meta_gets(
        self, method: str, file_ids: list[str]
    ) -> list[bytes | Exception]:
        """Concurrent per-shard sub-fetches, like :meth:`chunk_get_batch`.

        Per-item failures (missing file on one shard) come back in place;
        they never abort the other shards' sub-batches.
        """
        results: list[bytes | Exception | None] = [None] * len(file_ids)
        groups = self._file_positions(file_ids)

        def fetch(index: int, positions: list[int]) -> list[bytes | Exception]:
            self._trip(index)
            return getattr(self._services[index], method)(
                [file_ids[p] for p in positions]
            )

        if len(groups) <= 1 or self.fetch_workers == 1:
            for index, positions in groups.items():
                for position, data in zip(positions, fetch(index, positions)):
                    results[position] = data
        else:
            pool = self._get_fetch_pool()
            ordered = list(groups.items())
            futures = [
                pool.submit(
                    contextvars.copy_context().run, fetch, index, positions
                )
                for index, positions in ordered
            ]
            for (index, positions), future in zip(ordered, futures):
                for position, data in zip(positions, future.result()):
                    results[position] = data
        return results  # type: ignore[return-value]

    def recipe_put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        return self._scatter_meta_puts("recipe_put_many", items)

    def recipe_get_many(self, file_ids: list[str]) -> list[bytes | Exception]:
        return self._scatter_meta_gets("recipe_get_many", file_ids)

    def stub_put_many(
        self, items: list[tuple[str, bytes]]
    ) -> list[None | Exception]:
        return self._scatter_meta_puts("stub_put_many", items)

    def stub_get_many(self, file_ids: list[str]) -> list[bytes | Exception]:
        return self._scatter_meta_gets("stub_get_many", file_ids)

    def meta_delete_many(self, file_ids: list[str]) -> list[None | Exception]:
        statuses: list[None | Exception] = [None] * len(file_ids)
        for index, positions in self._file_positions(file_ids).items():
            self._trip(index)
            answers = self._services[index].meta_delete_many(
                [file_ids[p] for p in positions]
            )
            for position, status in zip(positions, answers):
                statuses[position] = status
        return statuses

    def flush(self) -> None:
        for index, service in enumerate(self._services):
            self._trip(index)
            service.flush()

    def stats(self) -> dict:
        """Round-trip counter for observability.

        .. deprecated:: prefer the registry series
           (``store_round_trips_total``, ``store_shard_requests_total``);
           this dict remains as a per-instance view.
        """
        return {"round_trips": self.round_trips, "services": len(self._services)}


@dataclass
class ReedSystem:
    """A fully wired REED deployment plus user enrollment.

    Create one with :func:`build_system`, enroll users with
    :meth:`new_client`, and drive uploads/downloads/rekeys through the
    returned :class:`~repro.core.client.REEDClient` objects.
    """

    key_manager: KeyManager
    authority: AttributeAuthority
    servers: list[REEDServer]
    keystore: KeyStore
    storage: StorageService
    scheme: str = "enhanced"
    cipher: SymmetricCipher | None = None
    chunking: ChunkingSpec | None = None
    key_batch_size: int = DEFAULT_BATCH_SIZE
    rng: RandomSource = SYSTEM_RANDOM
    keyreg_bits: int = FAST_KEY_BITS
    _owners: dict[str, KeyRegressionOwner] = field(default_factory=dict)

    def new_client(
        self,
        user_id: str,
        owner: bool = True,
        cache_bytes: int | None = None,
        scheme: str | None = None,
        encryption_threads: int | None = None,
        encryption_workers: int | None = None,
        chunk_cache_bytes: int | None = None,
    ) -> REEDClient:
        """Enroll a user and build their client.

        ``owner=False`` creates a read-only participant (no derivation
        keypair); ``cache_bytes`` sizes the MLE key cache (None disables
        caching, mirroring the paper's cache on/off experiments).
        ``encryption_workers`` defaults to one worker per CPU (capped);
        ``encryption_threads`` is its back-compat alias.
        ``chunk_cache_bytes`` enables the client-side trimmed-package
        read cache (None disables it).
        """
        if owner and user_id in self._owners:
            raise ConfigurationError(f"user {user_id!r} already enrolled as owner")
        key_client = ServerAidedKeyClient(
            LocalKeyManagerChannel(self.key_manager),
            client_id=user_id,
            cache=MLEKeyCache(cache_bytes) if cache_bytes else None,
            batch_size=self.key_batch_size,
            rng=self.rng,
        )
        keyreg_owner = None
        if owner:
            keyreg_owner = KeyRegressionOwner(key_bits=self.keyreg_bits, rng=self.rng)
            self._owners[user_id] = keyreg_owner
        return REEDClient(
            user_id=user_id,
            key_client=key_client,
            storage=self.storage,
            keystore=self.keystore,
            private_access_key=self.authority.issue_private_key(user_id),
            wrap_keys_provider=self.authority.wrap_keys_for,
            keyreg_owner=keyreg_owner,
            scheme=scheme or self.scheme,
            cipher=self.cipher,
            chunking=self.chunking,
            encryption_threads=encryption_threads,
            encryption_workers=encryption_workers,
            chunk_cache_bytes=chunk_cache_bytes,
            rng=self.rng,
        )

    @property
    def storage_stats(self) -> DataStoreStats:
        """Aggregate storage accounting across all data servers."""
        total = DataStoreStats()
        for server in self.servers:
            stats = server.stats
            total.logical_bytes += stats.logical_bytes
            total.physical_bytes += stats.physical_bytes
            total.stub_bytes += stats.stub_bytes
            total.chunks_received += stats.chunks_received
            total.chunks_stored += stats.chunks_stored
        return total


def build_system(
    num_data_servers: int = DEFAULT_DATA_SERVERS,
    scheme: str = "enhanced",
    cipher_name: str | None = None,
    chunking: ChunkingSpec | None = None,
    key_bits: int = FAST_KEY_BITS,
    key_batch_size: int = DEFAULT_BATCH_SIZE,
    rate_limit: float | None = None,
    rng: RandomSource | None = None,
    backends: list | None = None,
    container_bytes: int | None = None,
) -> ReedSystem:
    """Build an in-process REED deployment with the paper's topology.

    ``backends`` optionally supplies one :class:`BlobBackend` per data
    server (e.g. :class:`DirectoryBackend` for durable storage); memory
    backends are used by default.
    """
    if num_data_servers < 1:
        raise ConfigurationError("need at least one data server")
    rng = rng or SYSTEM_RANDOM
    cipher = get_cipher(cipher_name)
    km_kwargs = {}
    if rate_limit is not None:
        # Scale the burst with the configured rate so a small rate limit
        # actually limits (the default burst is sized for the default rate).
        km_kwargs["rate_limit"] = rate_limit
        km_kwargs["burst"] = max(rate_limit, 1.0)
    key_manager = KeyManager(key_bits=key_bits, rng=rng, **km_kwargs)
    authority = AttributeAuthority(rng=rng)
    if backends is None:
        backends = [MemoryBackend() for _ in range(num_data_servers)]
    if len(backends) != num_data_servers:
        raise ConfigurationError("one backend per data server required")
    store_kwargs = {}
    if container_bytes is not None:
        store_kwargs["container_bytes"] = container_bytes
    servers = [REEDServer(DataStore(backend, **store_kwargs)) for backend in backends]
    storage: StorageService
    if num_data_servers == 1:
        storage = servers[0]
    else:
        storage = ShardedStorageService(list(servers))
    return ReedSystem(
        key_manager=key_manager,
        authority=authority,
        servers=servers,
        keystore=KeyStore(),
        storage=storage,
        scheme=scheme,
        cipher=cipher,
        chunking=chunking,
        key_batch_size=key_batch_size,
        rng=rng,
        keyreg_bits=key_bits,
    )
