"""REED core: encryption schemes, client, server, policies, rekeying."""

from repro.core.client import (
    DownloadResult,
    REEDClient,
    UploadResult,
)
from repro.core.groups import GroupManager, GroupRekeyResult
from repro.core.lifecycle import KeyRotationScheduler, RotationPolicy
from repro.core.policy import FilePolicy
from repro.core.rekey import RekeyResult, RevocationMode
from repro.core.schemes import (
    CANARY,
    STUB_SIZE,
    BasicScheme,
    EncryptionScheme,
    EnhancedScheme,
    SplitPackage,
    available_schemes,
    get_scheme,
)
from repro.core.server import REEDServer, StorageService
from repro.core.stubs import decrypt_stub_file, encrypt_stub_file
from repro.core.system import (
    ReedSystem,
    ShardedStorageService,
    build_system,
)

__all__ = [
    "BasicScheme",
    "CANARY",
    "DownloadResult",
    "EncryptionScheme",
    "EnhancedScheme",
    "FilePolicy",
    "GroupManager",
    "GroupRekeyResult",
    "KeyRotationScheduler",
    "RotationPolicy",
    "REEDClient",
    "REEDServer",
    "ReedSystem",
    "RekeyResult",
    "RevocationMode",
    "STUB_SIZE",
    "ShardedStorageService",
    "SplitPackage",
    "StorageService",
    "UploadResult",
    "available_schemes",
    "build_system",
    "decrypt_stub_file",
    "encrypt_stub_file",
    "get_scheme",
]
