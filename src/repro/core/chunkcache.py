"""Client-side read cache over trimmed packages, keyed by fingerprint.

Deduplicated storage has read locality by construction: the same trimmed
package backs every file that contains the chunk, so a client restoring
several related files (or the same file twice) re-fetches identical
bytes.  :class:`ChunkCache` keeps recently fetched trimmed packages in a
byte-budgeted LRU (:class:`~repro.util.lru.LRUCache`), letting the
download pipeline serve repeats without a ``chunk_get_batch`` round
trip.  Only *trimmed packages* are cached — they are ciphertext under
the MLE key, so the cache holds nothing a stolen client disk would not
already reveal; plaintext never lands here.

Hit/miss/eviction counts are mirrored into the metrics registry
(``chunk_cache_*`` series) and into the active
:class:`~repro.obs.scope.AttributionScope`, so per-download cache
efficiency is exact even with concurrent downloads on a shared client.
"""

from __future__ import annotations

import threading

from repro.obs import scope as obs_scope
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.util.lru import LRUCache

#: Default capacity when a client enables the cache without a budget.
DEFAULT_CHUNK_CACHE_BYTES = 64 * 1024 * 1024


class ChunkCache:
    """Byte-budgeted LRU of trimmed packages with registry-backed metrics."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CHUNK_CACHE_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._cache: LRUCache[bytes, bytes] = LRUCache(
            capacity_bytes, size_of=len
        )
        self._lock = threading.Lock()
        self._reported_evictions = 0
        registry = metrics if metrics is not None else default_registry()
        self._hits = registry.counter(
            "chunk_cache_hits_total",
            "Chunk fetches served from the client read cache.",
        )
        self._misses = registry.counter(
            "chunk_cache_misses_total",
            "Chunk fetches that missed the client read cache.",
        )
        self._evictions = registry.counter(
            "chunk_cache_evictions_total",
            "Trimmed packages evicted from the client read cache.",
        )
        self._used_bytes = registry.gauge(
            "chunk_cache_bytes",
            "Bytes of trimmed packages resident in the client read cache.",
        )
        self._capacity_gauge = registry.gauge(
            "chunk_cache_capacity_bytes",
            "Configured byte budget of the client read cache.",
        )
        self._capacity_gauge.set(capacity_bytes)

    @property
    def capacity_bytes(self) -> int:
        return self._cache.capacity

    @property
    def used_bytes(self) -> int:
        return self._cache.used

    def get(self, fingerprint: bytes) -> bytes | None:
        """Look up a trimmed package; counts a hit or a miss."""
        data = self._cache.get(fingerprint)
        if data is None:
            self._misses.inc()
            obs_scope.add("chunk_cache_misses")
        else:
            self._hits.inc()
            obs_scope.add("chunk_cache_hits")
        return data

    def put(self, fingerprint: bytes, data: bytes) -> None:
        """Insert a trimmed package, evicting LRU entries as needed."""
        self._cache.put(fingerprint, data)
        # Evictions happen inside the LRU; report the delta since the
        # last put under a lock so concurrent puts do not double-count.
        with self._lock:
            evicted = self._cache.evictions - self._reported_evictions
            if evicted:
                self._reported_evictions = self._cache.evictions
                self._evictions.inc(evicted)
        self._used_bytes.set(self._cache.used)

    def clear(self) -> None:
        self._cache.clear()
        self._used_bytes.set(0)

    def stats(self) -> dict[str, int]:
        return self._cache.stats()
