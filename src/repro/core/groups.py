"""Group rekeying: one policy change covering many files.

The paper performs rekeying per file and poses group rekeying as future
work (Section IV-D: "we can generalize rekeying for a group of files").
This module implements that generalization with one level of key
indirection:

* a **group** owns its own key-regression chain, ABE-protected under the
  group policy (exactly like a file's key state);
* each member file's key state is sealed in a **group envelope** —
  symmetric encryption under the group key — instead of its own ABE
  ciphertext.

Rekeying the group then costs **one** CP-ABE encryption (the expensive,
per-policy-leaf operation measured in Experiment A.4) plus one tiny
symmetric re-wrap per member file; per-file rekeying would cost one
CP-ABE encryption *per file*.  For a project with hundreds of files and
hundreds of users, that is the difference between milliseconds and
minutes of policy-crypto work.

Clients open group-enveloped files transparently
(:meth:`REEDClient._open_key_state` resolves the group), so downloads,
lazy access to old versions, and revocation semantics all match the
per-file design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import envelopes
from repro.core.client import REEDClient, UploadResult
from repro.core.policy import FilePolicy
from repro.core.rekey import RevocationMode
from repro.core.rekeypipe import FileRekeyPlan, RekeyPipeline
from repro.core.stubs import STUB_NONCE_SIZE
from repro.crypto.hashing import hmac_sha256, kdf
from repro.crypto.rsa import RSAPublicKey
from repro.keyreg.rsa_keyreg import KeyRegressionMember, KeyState
from repro.obs import scope as obs_scope
from repro.storage.keystore import KeyStateRecord
from repro.storage.recipes import FileRecipe
from repro.util.bytesutil import ct_equal
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ConfigurationError, CorruptionError, IntegrityError


@dataclass(frozen=True)
class GroupRekeyResult:
    """Accounting for one group rekey."""

    group_id: str
    mode: RevocationMode
    old_group_version: int
    new_group_version: int
    #: CP-ABE encryptions performed (always 1 — the point of the design).
    abe_operations: int
    #: Member files whose envelopes were re-wrapped.
    files_rewrapped: int
    #: Stub bytes moved (active mode only).
    stub_bytes_reencrypted: int
    #: Storage-layer round trips (batch RPCs to data servers) issued.
    store_round_trips: int = 0
    #: Key-store round trips issued.
    keystore_round_trips: int = 0
    #: Rekey pipeline windows shipped (0 on the serial path).
    batches: int = 0
    #: Stub re-encryption workers configured (0 when serial or lazy).
    workers: int = 0


class GroupManager:
    """Group operations for one owning client.

    The owner's derivation keypair drives the group's key-regression
    chain; any client whose attributes satisfy the group policy can read
    member files.
    """

    def __init__(self, client: REEDClient) -> None:
        if client.keyreg_owner is None:
            raise ConfigurationError("group management requires an owner client")
        self.client = client

    # -- manifest ------------------------------------------------------------

    def _manifest_id(self, group_id: str) -> str:
        return f"@group-manifest/{group_id}"

    def _write_manifest(self, group_id: str, group_key: bytes, files: list[str]) -> None:
        enc = Encoder().uint(len(files))
        for file_id in sorted(files):
            enc.text(file_id)
        body = enc.done()
        mac = hmac_sha256(kdf(group_key, "group-manifest-mac"), body)
        self.client.storage.recipe_put(self._manifest_id(group_id), body + mac)

    @staticmethod
    def _decode_manifest(blob: bytes, group_key: bytes) -> list[str]:
        if len(blob) < 32:
            raise IntegrityError("group manifest too short")
        body, mac = blob[:-32], blob[-32:]
        if not ct_equal(hmac_sha256(kdf(group_key, "group-manifest-mac"), body), mac):
            raise IntegrityError("group manifest failed authentication")
        dec = Decoder(body)
        files = [dec.text() for _ in range(dec.uint())]
        dec.expect_end()
        return files

    def _read_manifest(self, group_id: str, group_key: bytes) -> list[str]:
        blob = self.client.storage.recipe_get(self._manifest_id(group_id))
        return self._decode_manifest(blob, group_key)

    def _read_manifest_at(
        self, group_id: str, record: KeyStateRecord, state: KeyState
    ) -> list[str]:
        """Read the manifest, probing older group keys if needed.

        The group record commits before member records and the manifest
        (it is the single ABE operation), so an aborted rekey can leave
        the manifest MAC'd under an *older* group key.  Key regression
        makes recovery free: unwind the current state version by version
        until the MAC verifies.
        """
        blob = self.client.storage.recipe_get(self._manifest_id(group_id))
        try:
            return self._decode_manifest(blob, state.derive_key())
        except IntegrityError:
            pass
        member = KeyRegressionMember(RSAPublicKey.decode(record.owner_public_key))
        for version in range(state.version - 1, -1, -1):
            key = member.unwind_to(state, version).derive_key()
            try:
                return self._decode_manifest(blob, key)
            except IntegrityError:
                continue
        raise IntegrityError(
            "group manifest failed authentication at every group version"
        )

    # -- group state ------------------------------------------------------------

    def _group_record(self, group_id: str) -> KeyStateRecord:
        return self.client.keystore.get(self.client.group_record_id(group_id))

    def create_group(self, group_id: str, policy: FilePolicy) -> None:
        """Create a group: a fresh key-regression chain under ``policy``."""
        record_id = self.client.group_record_id(group_id)
        if self.client.keystore.exists(record_id):
            raise ConfigurationError(f"group {group_id!r} already exists")
        state = self.client.keyreg_owner.initial_state()
        record = self.client._seal_key_state(record_id, state, policy)
        self.client.keystore.put(record)
        self._write_manifest(group_id, state.derive_key(), [])

    def group_key(self, group_id: str) -> tuple[KeyState, bytes]:
        """The group's current key state and derived group key."""
        record = self._group_record(group_id)
        state = self.client._open_key_state(record)
        return state, state.derive_key()

    def members(self, group_id: str) -> list[str]:
        record = self._group_record(group_id)
        state = self.client._open_key_state(record)
        return self._read_manifest_at(group_id, record, state)

    # -- file membership ------------------------------------------------------

    def upload(
        self, group_id: str, file_id: str, data, pathname: str = ""
    ) -> UploadResult:
        """Upload a file into the group.

        The file's chunks and stub file are produced exactly as in a
        normal upload; only the key-state envelope differs (sealed under
        the group key instead of per-file ABE).
        """
        record = self._group_record(group_id)
        state = self.client._open_key_state(record)
        group_key = state.derive_key()
        result = self.client.upload(
            file_id, data, policy=FilePolicy.for_users([self.client.user_id]),
            pathname=pathname,
        )
        self._reseal_file(file_id, group_id, state.version, group_key)
        files = self._read_manifest_at(group_id, record, state)
        if file_id not in files:
            files.append(file_id)
        self._write_manifest(group_id, group_key, files)
        return result

    def adopt(self, group_id: str, file_id: str) -> None:
        """Move an existing (ABE-sealed) file of this owner into the group."""
        record = self._group_record(group_id)
        state = self.client._open_key_state(record)
        group_key = state.derive_key()
        self._reseal_file(file_id, group_id, state.version, group_key)
        files = self._read_manifest_at(group_id, record, state)
        if file_id in files:
            raise ConfigurationError(f"{file_id!r} already in group {group_id!r}")
        files.append(file_id)
        self._write_manifest(group_id, group_key, files)

    def _reseal_file(
        self, file_id: str, group_id: str, group_version: int, group_key: bytes
    ) -> None:
        """Replace a file's envelope with a group envelope (same state)."""
        record = self.client.keystore.get(file_id)
        file_state = self.client._open_key_state(record)
        self.client.keystore.put(
            KeyStateRecord(
                file_id=file_id,
                policy_text=f"@group:{group_id}",
                key_version=file_state.version,
                encrypted_state=envelopes.seal_group(
                    group_id,
                    group_version,
                    group_key,
                    file_state.encode(),
                    cipher=self.client.scheme.cipher,
                    rng=self.client.rng,
                ),
                owner_public_key=record.owner_public_key,
            )
        )

    # -- rekeying ------------------------------------------------------------

    def rekey(
        self,
        group_id: str,
        new_policy: FilePolicy,
        mode: RevocationMode = RevocationMode.LAZY,
        pipelined: bool = True,
        _record: KeyStateRecord | None = None,
    ) -> GroupRekeyResult:
        """Rekey the whole group under ``new_policy``.

        One ABE encryption seals the new group state; every member file's
        envelope is re-wrapped under the new group key (symmetric, tiny).
        Active mode additionally winds each member file's own state and
        re-encrypts its stub file, exactly like per-file active
        revocation.

        By default member files ride the batched
        :class:`~repro.core.rekeypipe.RekeyPipeline` — one batch RPC per
        stage per window instead of ~5 round trips per file, with stub
        re-encryption fanned out across the client's rekey workers.
        ``pipelined=False`` keeps the serial per-file reference path;
        both produce bit-identical keystore records, stub files, and
        recipes (every random draw happens on this thread in file
        order).

        The group record commits first (it *is* the single ABE
        operation); member records and the manifest follow, and an
        aborted run converges on retry — the manifest read probes older
        group keys (:meth:`_read_manifest_at`) and the stub
        re-encryption recovers files whose recipes ran ahead of their
        key states.
        """
        client = self.client
        owner = client.keyreg_owner
        tracer = client.tracer
        store_scoped = getattr(client.storage, "supports_attribution", False)
        key_scoped = getattr(client.keystore, "supports_attribution", False)
        store_trips_before = getattr(client.storage, "round_trips", 0)
        key_trips_before = getattr(client.keystore, "round_trips", 0)
        with obs_scope.attribution() as scope, tracer.span(
            "rekey.group", mode=mode.value
        ):
            record = _record if _record is not None else self._group_record(group_id)
            old_state = client._open_key_state(record)
            files = self._read_manifest_at(group_id, record, old_state)

            new_state = owner.wind(old_state)
            new_key = new_state.derive_key()
            record_id = client.group_record_id(group_id)
            client.keystore.put(
                client._seal_key_state(record_id, new_state, new_policy)
            )

            stub_bytes = 0
            batches = 0
            if pipelined:
                stats = self._rekey_members_pipelined(
                    group_id, files, record, old_state, new_state.version,
                    new_key, mode,
                )
                stub_bytes = stats.stub_bytes
                batches = stats.batches
            else:
                for file_id in files:
                    file_record = client.keystore.get(file_id)
                    file_state = client._open_key_state(file_record)
                    if mode is RevocationMode.ACTIVE:
                        file_state, moved = self._actively_rekey_file(
                            file_record, file_state
                        )
                        stub_bytes += moved
                    client.keystore.put(
                        KeyStateRecord(
                            file_id=file_id,
                            policy_text=f"@group:{group_id}",
                            key_version=file_state.version,
                            encrypted_state=envelopes.seal_group(
                                group_id,
                                new_state.version,
                                new_key,
                                file_state.encode(),
                                cipher=client.scheme.cipher,
                                rng=client.rng,
                            ),
                            owner_public_key=file_record.owner_public_key,
                        )
                    )
            self._write_manifest(group_id, new_key, files)

        active = mode is RevocationMode.ACTIVE
        client._m_rekey_files.labels(mode=mode.value).inc(len(files))
        client._m_rekey_batches.inc(batches)
        client._m_rekey_stub_bytes.inc(stub_bytes)
        return GroupRekeyResult(
            group_id=group_id,
            mode=mode,
            old_group_version=old_state.version,
            new_group_version=new_state.version,
            abe_operations=1,
            files_rewrapped=len(files),
            stub_bytes_reencrypted=stub_bytes,
            store_round_trips=scope.get_int("store_round_trips")
            if store_scoped
            else getattr(client.storage, "round_trips", 0) - store_trips_before,
            keystore_round_trips=scope.get_int("keystore_round_trips")
            if key_scoped
            else getattr(client.keystore, "round_trips", 0) - key_trips_before,
            batches=batches,
            workers=client.rekey_workers if (pipelined and active) else 0,
        )

    def _rekey_members_pipelined(
        self,
        group_id: str,
        files: list[str],
        record: KeyStateRecord,
        old_state: KeyState,
        new_group_version: int,
        new_key: bytes,
        mode: RevocationMode,
    ):
        """Re-wrap (and actively rekey) member files via the pipeline."""
        client = self.client
        active = mode is RevocationMode.ACTIVE

        # Member envelopes reference group versions <= old_state.version.
        # Opening them through client._open_key_state would re-fetch and
        # ABE-open the group record once per file; deriving old group
        # keys from the state we already hold keeps the keystore cost at
        # one batch RPC per window.
        member_view = KeyRegressionMember(
            RSAPublicKey.decode(record.owner_public_key)
        )
        group_keys: dict[int, bytes] = {old_state.version: old_state.derive_key()}

        def group_key_at(version: int) -> bytes:
            key = group_keys.get(version)
            if key is None:
                if version > old_state.version:
                    raise CorruptionError(
                        f"envelope references future group version {version}"
                    )
                key = member_view.unwind_to(old_state, version).derive_key()
                group_keys[version] = key
            return key

        def open_member_state(file_record: KeyStateRecord) -> KeyState:
            tag, payload = envelopes.decode_envelope(file_record.encrypted_state)
            if tag != envelopes.TAG_GROUP or payload.group_id != group_id:
                return client._open_key_state(file_record)
            plaintext = envelopes.open_group(
                payload, group_key_at(payload.group_version),
                cipher=client.scheme.cipher,
            )
            state = KeyState.decode(plaintext)
            if state.version != file_record.key_version:
                raise CorruptionError(
                    "key-state version disagrees with its record metadata"
                )
            return state

        def plan_file(
            file_id: str,
            file_record: KeyStateRecord,
            recipe_bytes: bytes | None,
            stub_file: bytes | None,
        ) -> FileRekeyPlan:
            file_state = open_member_state(file_record)
            old_version = file_state.version
            stub_fields = {}
            if active:
                recipe = FileRecipe.decode(recipe_bytes)
                old_file_key = client._stub_source_key(
                    file_record, file_state, recipe.key_version
                )
                file_state = client.keyreg_owner.wind(file_state)
                # Draw order matches the serial path per file: stub nonce
                # first, then the group envelope's nonce (in seal_group).
                stub_fields = dict(
                    stub_file=stub_file,
                    old_file_key=old_file_key,
                    new_file_key=file_state.derive_key(),
                    nonce=client.rng.random_bytes(STUB_NONCE_SIZE),
                    updated_recipe=FileRecipe(
                        file_id=recipe.file_id,
                        pathname=recipe.pathname,
                        size=recipe.size,
                        scheme=recipe.scheme,
                        key_version=file_state.version,
                        chunks=recipe.chunks,
                    ).encode(),
                )
            new_record = KeyStateRecord(
                file_id=file_id,
                policy_text=f"@group:{group_id}",
                key_version=file_state.version,
                encrypted_state=envelopes.seal_group(
                    group_id,
                    new_group_version,
                    new_key,
                    file_state.encode(),
                    cipher=client.scheme.cipher,
                    rng=client.rng,
                ),
                owner_public_key=file_record.owner_public_key,
            )
            return FileRekeyPlan(
                file_id=file_id,
                new_record=new_record,
                old_key_version=old_version,
                new_key_version=file_state.version,
                **stub_fields,
            )

        pipeline = RekeyPipeline(
            client.storage,
            client.keystore,
            plan_file,
            client.tracer,
            stub_pool=client._stub_rekey_pool,
            active=active,
            batch_size=client.rekey_batch_size,
            pipeline_depth=client.pipeline_depth,
        )
        return pipeline.run(list(files))

    def _actively_rekey_file(
        self, record: KeyStateRecord, state: KeyState
    ) -> tuple[KeyState, int]:
        """Wind a member file's state and re-encrypt its stub file."""
        client = self.client
        recipe = FileRecipe.decode(client.storage.recipe_get(record.file_id))
        old_file_key = client._stub_source_key(record, state, recipe.key_version)
        new_state = client.keyreg_owner.wind(state)
        stub_file = client.storage.stub_get(record.file_id)
        nonce = client.rng.random_bytes(STUB_NONCE_SIZE)
        (new_stub_file,) = client._stub_rekey_pool.reencrypt(
            [(stub_file, old_file_key, new_state.derive_key(), nonce)]
        )
        client.storage.stub_put(record.file_id, new_stub_file)
        updated = FileRecipe(
            file_id=recipe.file_id,
            pathname=recipe.pathname,
            size=recipe.size,
            scheme=recipe.scheme,
            key_version=new_state.version,
            chunks=recipe.chunks,
        )
        client.storage.recipe_put(record.file_id, updated.encode())
        return new_state, len(stub_file) + len(new_stub_file)

    def revoke_users(
        self,
        group_id: str,
        revoked: set[str],
        mode: RevocationMode = RevocationMode.LAZY,
        pipelined: bool = True,
    ) -> GroupRekeyResult:
        """Convenience: rekey with the current policy minus ``revoked``."""
        record = self._group_record(group_id)
        current = FilePolicy.parse(record.policy_text)
        return self.rekey(
            group_id,
            current.without_users(revoked),
            mode,
            pipelined=pipelined,
            _record=record,
        )
