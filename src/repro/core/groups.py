"""Group rekeying: one policy change covering many files.

The paper performs rekeying per file and poses group rekeying as future
work (Section IV-D: "we can generalize rekeying for a group of files").
This module implements that generalization with one level of key
indirection:

* a **group** owns its own key-regression chain, ABE-protected under the
  group policy (exactly like a file's key state);
* each member file's key state is sealed in a **group envelope** —
  symmetric encryption under the group key — instead of its own ABE
  ciphertext.

Rekeying the group then costs **one** CP-ABE encryption (the expensive,
per-policy-leaf operation measured in Experiment A.4) plus one tiny
symmetric re-wrap per member file; per-file rekeying would cost one
CP-ABE encryption *per file*.  For a project with hundreds of files and
hundreds of users, that is the difference between milliseconds and
minutes of policy-crypto work.

Clients open group-enveloped files transparently
(:meth:`REEDClient._open_key_state` resolves the group), so downloads,
lazy access to old versions, and revocation semantics all match the
per-file design.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import envelopes
from repro.core.client import REEDClient, UploadResult
from repro.core.policy import FilePolicy
from repro.core.rekey import RevocationMode
from repro.core.stubs import decrypt_stub_file, encrypt_stub_file
from repro.crypto.hashing import hmac_sha256, kdf
from repro.crypto.rsa import RSAPublicKey
from repro.keyreg.rsa_keyreg import KeyRegressionMember, KeyState
from repro.storage.keystore import KeyStateRecord
from repro.storage.recipes import FileRecipe
from repro.util.bytesutil import ct_equal
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ConfigurationError, IntegrityError


@dataclass(frozen=True)
class GroupRekeyResult:
    """Accounting for one group rekey."""

    group_id: str
    mode: RevocationMode
    old_group_version: int
    new_group_version: int
    #: CP-ABE encryptions performed (always 1 — the point of the design).
    abe_operations: int
    #: Member files whose envelopes were re-wrapped.
    files_rewrapped: int
    #: Stub bytes moved (active mode only).
    stub_bytes_reencrypted: int


class GroupManager:
    """Group operations for one owning client.

    The owner's derivation keypair drives the group's key-regression
    chain; any client whose attributes satisfy the group policy can read
    member files.
    """

    def __init__(self, client: REEDClient) -> None:
        if client.keyreg_owner is None:
            raise ConfigurationError("group management requires an owner client")
        self.client = client

    # -- manifest ------------------------------------------------------------

    def _manifest_id(self, group_id: str) -> str:
        return f"@group-manifest/{group_id}"

    def _write_manifest(self, group_id: str, group_key: bytes, files: list[str]) -> None:
        enc = Encoder().uint(len(files))
        for file_id in sorted(files):
            enc.text(file_id)
        body = enc.done()
        mac = hmac_sha256(kdf(group_key, "group-manifest-mac"), body)
        self.client.storage.recipe_put(self._manifest_id(group_id), body + mac)

    def _read_manifest(self, group_id: str, group_key: bytes) -> list[str]:
        blob = self.client.storage.recipe_get(self._manifest_id(group_id))
        if len(blob) < 32:
            raise IntegrityError("group manifest too short")
        body, mac = blob[:-32], blob[-32:]
        if not ct_equal(hmac_sha256(kdf(group_key, "group-manifest-mac"), body), mac):
            raise IntegrityError("group manifest failed authentication")
        dec = Decoder(body)
        files = [dec.text() for _ in range(dec.uint())]
        dec.expect_end()
        return files

    # -- group state ------------------------------------------------------------

    def _group_record(self, group_id: str) -> KeyStateRecord:
        return self.client.keystore.get(self.client.group_record_id(group_id))

    def create_group(self, group_id: str, policy: FilePolicy) -> None:
        """Create a group: a fresh key-regression chain under ``policy``."""
        record_id = self.client.group_record_id(group_id)
        if self.client.keystore.exists(record_id):
            raise ConfigurationError(f"group {group_id!r} already exists")
        state = self.client.keyreg_owner.initial_state()
        record = self.client._seal_key_state(record_id, state, policy)
        self.client.keystore.put(record)
        self._write_manifest(group_id, state.derive_key(), [])

    def group_key(self, group_id: str) -> tuple[KeyState, bytes]:
        """The group's current key state and derived group key."""
        record = self._group_record(group_id)
        state = self.client._open_key_state(record)
        return state, state.derive_key()

    def members(self, group_id: str) -> list[str]:
        _state, key = self.group_key(group_id)
        return self._read_manifest(group_id, key)

    # -- file membership ------------------------------------------------------

    def upload(
        self, group_id: str, file_id: str, data, pathname: str = ""
    ) -> UploadResult:
        """Upload a file into the group.

        The file's chunks and stub file are produced exactly as in a
        normal upload; only the key-state envelope differs (sealed under
        the group key instead of per-file ABE).
        """
        state, group_key = self.group_key(group_id)
        result = self.client.upload(
            file_id, data, policy=FilePolicy.for_users([self.client.user_id]),
            pathname=pathname,
        )
        self._reseal_file(file_id, group_id, state.version, group_key)
        files = self._read_manifest(group_id, group_key)
        if file_id not in files:
            files.append(file_id)
        self._write_manifest(group_id, group_key, files)
        return result

    def adopt(self, group_id: str, file_id: str) -> None:
        """Move an existing (ABE-sealed) file of this owner into the group."""
        state, group_key = self.group_key(group_id)
        self._reseal_file(file_id, group_id, state.version, group_key)
        files = self._read_manifest(group_id, group_key)
        if file_id in files:
            raise ConfigurationError(f"{file_id!r} already in group {group_id!r}")
        files.append(file_id)
        self._write_manifest(group_id, group_key, files)

    def _reseal_file(
        self, file_id: str, group_id: str, group_version: int, group_key: bytes
    ) -> None:
        """Replace a file's envelope with a group envelope (same state)."""
        record = self.client.keystore.get(file_id)
        file_state = self.client._open_key_state(record)
        self.client.keystore.put(
            KeyStateRecord(
                file_id=file_id,
                policy_text=f"@group:{group_id}",
                key_version=file_state.version,
                encrypted_state=envelopes.seal_group(
                    group_id,
                    group_version,
                    group_key,
                    file_state.encode(),
                    cipher=self.client.scheme.cipher,
                    rng=self.client.rng,
                ),
                owner_public_key=record.owner_public_key,
            )
        )

    # -- rekeying ------------------------------------------------------------

    def rekey(
        self,
        group_id: str,
        new_policy: FilePolicy,
        mode: RevocationMode = RevocationMode.LAZY,
    ) -> GroupRekeyResult:
        """Rekey the whole group under ``new_policy``.

        One ABE encryption seals the new group state; every member file's
        envelope is re-wrapped under the new group key (symmetric, tiny).
        Active mode additionally winds each member file's own state and
        re-encrypts its stub file, exactly like per-file active
        revocation.
        """
        owner = self.client.keyreg_owner
        record = self._group_record(group_id)
        old_state = self.client._open_key_state(record)
        old_key = old_state.derive_key()
        files = self._read_manifest(group_id, old_key)

        new_state = owner.wind(old_state)
        new_key = new_state.derive_key()
        record_id = self.client.group_record_id(group_id)
        self.client.keystore.put(
            self.client._seal_key_state(record_id, new_state, new_policy)
        )

        stub_bytes = 0
        for file_id in files:
            file_record = self.client.keystore.get(file_id)
            file_state = self.client._open_key_state(file_record)
            if mode is RevocationMode.ACTIVE:
                file_state, moved = self._actively_rekey_file(
                    file_record, file_state
                )
                stub_bytes += moved
            self.client.keystore.put(
                KeyStateRecord(
                    file_id=file_id,
                    policy_text=f"@group:{group_id}",
                    key_version=file_state.version,
                    encrypted_state=envelopes.seal_group(
                        group_id,
                        new_state.version,
                        new_key,
                        file_state.encode(),
                        cipher=self.client.scheme.cipher,
                        rng=self.client.rng,
                    ),
                    owner_public_key=file_record.owner_public_key,
                )
            )
        self._write_manifest(group_id, new_key, files)
        return GroupRekeyResult(
            group_id=group_id,
            mode=mode,
            old_group_version=old_state.version,
            new_group_version=new_state.version,
            abe_operations=1,
            files_rewrapped=len(files),
            stub_bytes_reencrypted=stub_bytes,
        )

    def _actively_rekey_file(
        self, record: KeyStateRecord, state: KeyState
    ) -> tuple[KeyState, int]:
        """Wind a member file's state and re-encrypt its stub file."""
        client = self.client
        recipe = FileRecipe.decode(client.storage.recipe_get(record.file_id))
        member = KeyRegressionMember(RSAPublicKey.decode(record.owner_public_key))
        old_file_key = member.unwind_to(state, recipe.key_version).derive_key()
        new_state = client.keyreg_owner.wind(state)
        stub_file = client.storage.stub_get(record.file_id)
        stubs = decrypt_stub_file(old_file_key, stub_file, cipher=client.scheme.cipher)
        new_stub_file = encrypt_stub_file(
            new_state.derive_key(),
            stubs,
            stub_size=len(stubs[0]) if stubs else client.scheme.stub_size,
            cipher=client.scheme.cipher,
            rng=client.rng,
        )
        client.storage.stub_put(record.file_id, new_stub_file)
        updated = FileRecipe(
            file_id=recipe.file_id,
            pathname=recipe.pathname,
            size=recipe.size,
            scheme=recipe.scheme,
            key_version=new_state.version,
            chunks=recipe.chunks,
        )
        client.storage.recipe_put(record.file_id, updated.encode())
        return new_state, len(stub_file) + len(new_stub_file)

    def revoke_users(
        self,
        group_id: str,
        revoked: set[str],
        mode: RevocationMode = RevocationMode.LAZY,
    ) -> GroupRekeyResult:
        """Convenience: rekey with the current policy minus ``revoked``."""
        record = self._group_record(group_id)
        current = FilePolicy.parse(record.policy_text)
        return self.rekey(group_id, current.without_users(revoked), mode)
