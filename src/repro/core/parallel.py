"""Parallel chunk-transform pool for the client encrypt path.

The chunk transform (MLE encryption + CAONT packaging) is pure Python and
CPU-bound, so the GIL serializes it no matter how many threads run it —
the journal version of REED reaches its reported throughputs only with
truly concurrent chunk encryption.  :class:`ChunkTransformPool` runs the
transform across *processes*: chunk batches are pickled to workers, each
worker rebuilds the encryption scheme once from its registry names, and
results are reassembled in submission order.

The pool degrades gracefully:

* **serial** for small batches (the pickling round trip would dominate),
  for a single-worker configuration, and for schemes or ciphers that are
  not registry-reconstructible in a fresh process (custom instances);
* **threads** when process pools are unavailable on the platform
  (spawn failure) — still correct, occasionally useful when the cipher
  releases the GIL.

Worker processes are started lazily on first use and reused across
uploads; call :meth:`ChunkTransformPool.close` (or
:meth:`REEDClient.close <repro.core.client.REEDClient.close>`) to reap
them deterministically.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

from repro.core.schemes import STUB_SIZE, EncryptionScheme, SplitPackage, get_scheme
from repro.core.stubs import decrypt_stub_file, encrypt_stub_file
from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.util.errors import ConfigurationError, IntegrityError

#: Upper bound on the default worker count: chunk transforms saturate
#: memory bandwidth well before this many cores help.
DEFAULT_WORKER_CAP = 8

#: Below this many bytes per batch the fork/pickle overhead exceeds the
#: parallel win and the transform runs serially in-process.
DEFAULT_MIN_PARALLEL_BYTES = 1 << 20


def default_worker_count(cap: int = DEFAULT_WORKER_CAP) -> int:
    """``os.cpu_count()`` capped — the default client worker count."""
    return max(1, min(os.cpu_count() or 1, cap))


# -- worker-process side -----------------------------------------------------

#: Per-process scheme cache: workers rebuild the scheme once per
#: (scheme, cipher, stub size) and reuse it for every batch.
_WORKER_SCHEMES: dict[tuple[str, str, int], EncryptionScheme] = {}


def _encrypt_batch(
    scheme_name: str,
    cipher_name: str,
    stub_size: int,
    pairs: list[tuple[bytes, bytes]],
) -> list[SplitPackage]:
    """Worker entry point: transform ``(chunk, mle_key)`` pairs.

    Module-level (picklable) by design; the scheme travels as registry
    names, never as a pickled object graph.
    """
    spec = (scheme_name, cipher_name, stub_size)
    scheme = _WORKER_SCHEMES.get(spec)
    if scheme is None:
        scheme = get_scheme(
            scheme_name, cipher=get_cipher(cipher_name), stub_size=stub_size
        )
        _WORKER_SCHEMES[spec] = scheme
    return [scheme.encrypt_chunk(chunk, mle_key) for chunk, mle_key in pairs]


def _decrypt_batch(
    scheme_name: str,
    cipher_name: str,
    stub_size: int,
    pairs: list[tuple[bytes, bytes]],
) -> list[bytes]:
    """Worker entry point: invert ``(trimmed_package, stub)`` pairs.

    Integrity failures (tampered package) raise
    :class:`~repro.util.errors.IntegrityError`, which pickles back to the
    client intact.
    """
    spec = (scheme_name, cipher_name, stub_size)
    scheme = _WORKER_SCHEMES.get(spec)
    if scheme is None:
        scheme = get_scheme(
            scheme_name, cipher=get_cipher(cipher_name), stub_size=stub_size
        )
        _WORKER_SCHEMES[spec] = scheme
    return [scheme.decrypt_chunk(trimmed, stub) for trimmed, stub in pairs]


#: Per-process cipher cache for the stub-rekey worker entry point.
_WORKER_CIPHERS: dict[str, SymmetricCipher] = {}


def _reencrypt_one_stub_file(
    cipher: SymmetricCipher,
    stub_file: bytes,
    old_key: bytes,
    new_key: bytes,
    nonce: bytes,
    default_stub_size: int,
) -> bytes:
    """Decrypt one stub file and re-encrypt it with the given nonce.

    If the old key no longer opens the stub file, the new key is tried:
    an interrupted earlier rekey may have shipped this stub file already
    (key state commits last), and the owner's deterministic wind
    re-derives the very same new key on retry.
    """
    try:
        stubs = decrypt_stub_file(old_key, stub_file, cipher=cipher)
    except IntegrityError:
        if new_key == old_key:
            raise
        stubs = decrypt_stub_file(new_key, stub_file, cipher=cipher)
    stub_size = len(stubs[0]) if stubs else default_stub_size
    return encrypt_stub_file(
        new_key, stubs, stub_size=stub_size, cipher=cipher, nonce=nonce
    )


def _reencrypt_stub_batch(
    cipher_name: str,
    default_stub_size: int,
    items: list[tuple[bytes, bytes, bytes, bytes]],
) -> list[bytes]:
    """Worker entry point: ``(stub_file, old_key, new_key, nonce)`` items."""
    cipher = _WORKER_CIPHERS.get(cipher_name)
    if cipher is None:
        cipher = get_cipher(cipher_name)
        _WORKER_CIPHERS[cipher_name] = cipher
    return [
        _reencrypt_one_stub_file(cipher, *item, default_stub_size)
        for item in items
    ]


# -- client side -------------------------------------------------------------


def _registry_spec(scheme: EncryptionScheme) -> tuple[str, str, int] | None:
    """Registry names that rebuild ``scheme`` in a fresh process, or None.

    A subclassed scheme or a cipher instance that is not the registry
    singleton cannot be faithfully reconstructed from names, so such
    schemes stay on the in-process paths.
    """
    cipher_name = getattr(scheme.cipher, "name", None)
    scheme_name = getattr(scheme, "name", None)
    if not cipher_name or not scheme_name:
        return None
    try:
        rebuilt = get_scheme(
            scheme_name, cipher=get_cipher(cipher_name), stub_size=scheme.stub_size
        )
    except ConfigurationError:
        return None
    if type(rebuilt) is not type(scheme) or type(rebuilt.cipher) is not type(
        scheme.cipher
    ):
        return None
    return (scheme_name, cipher_name, scheme.stub_size)


def _make_process_pool(workers: int) -> ProcessPoolExecutor:
    # Prefer fork where available: workers inherit the warm module state
    # (tables, caches) instead of re-importing everything.
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = multiprocessing.get_context()
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class ChunkTransformPool:
    """Runs ``scheme.encrypt_chunk`` over batches, in parallel when it pays.

    ``workers`` defaults to :func:`default_worker_count`.  ``use_processes``
    may be forced off to get the legacy thread-pool behaviour.
    """

    def __init__(
        self,
        scheme: EncryptionScheme,
        workers: int | None = None,
        use_processes: bool = True,
        min_parallel_bytes: int = DEFAULT_MIN_PARALLEL_BYTES,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ConfigurationError("need at least one encryption worker")
        self.scheme = scheme
        self.workers = workers
        self.min_parallel_bytes = min_parallel_bytes
        self._spec = _registry_spec(scheme) if use_processes else None
        self._executor: Executor | None = None
        self._executor_is_process = False
        #: Batches that actually ran on the process pool (for tests/stats).
        self.parallel_batches = 0
        self.serial_batches = 0

    # -- executor lifecycle ------------------------------------------------

    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self._spec is not None:
                try:
                    self._executor = _make_process_pool(self.workers)
                    self._executor_is_process = True
                except (NotImplementedError, OSError, PermissionError):
                    # Platform without working multiprocessing: threads
                    # keep the API (not the speedup).
                    self._spec = None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
                self._executor_is_process = False
        return self._executor

    def close(self) -> None:
        """Shut down worker processes/threads; the pool restarts lazily."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ChunkTransformPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- transform ---------------------------------------------------------

    def _encrypt_serial(
        self, chunks: list[bytes], mle_keys: list[bytes]
    ) -> list[SplitPackage]:
        encrypt = self.scheme.encrypt_chunk
        return [encrypt(chunk, key) for chunk, key in zip(chunks, mle_keys)]

    def encrypt(
        self, chunks: list[bytes], mle_keys: list[bytes]
    ) -> list[SplitPackage]:
        """Transform chunks into split packages, preserving order."""
        if len(chunks) != len(mle_keys):
            raise ConfigurationError(
                f"{len(chunks)} chunks but {len(mle_keys)} MLE keys"
            )
        total = sum(len(chunk) for chunk in chunks)
        if (
            self.workers == 1
            or len(chunks) < 2
            or (self._spec is not None and total < self.min_parallel_bytes)
        ):
            self.serial_batches += 1
            return self._encrypt_serial(chunks, mle_keys)
        executor = self._get_executor()
        if not self._executor_is_process:
            self.parallel_batches += 1
            return list(executor.map(self.scheme.encrypt_chunk, chunks, mle_keys))
        # Slice into one contiguous span per worker; futures come back in
        # submission order, so reassembly is a flatten.
        spec = self._spec
        span = max(1, -(-len(chunks) // self.workers))
        futures = []
        for start in range(0, len(chunks), span):
            pairs = list(
                zip(chunks[start : start + span], mle_keys[start : start + span])
            )
            futures.append(executor.submit(_encrypt_batch, *spec, pairs))
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool:  # pragma: no cover - worker crash
            # A dead worker (OOM-kill, signal) poisons the whole pool:
            # disable it and redo this batch in-process rather than fail
            # the upload.
            self.close()
            self._spec = None
            self.serial_batches += 1
            return self._encrypt_serial(chunks, mle_keys)
        self.parallel_batches += 1
        return [package for batch in results for package in batch]

    def _decrypt_serial(
        self, trimmed: list[bytes], stubs: list[bytes]
    ) -> list[bytes]:
        decrypt = self.scheme.decrypt_chunk
        return [decrypt(package, stub) for package, stub in zip(trimmed, stubs)]

    def decrypt(self, trimmed: list[bytes], stubs: list[bytes]) -> list[bytes]:
        """Invert split packages back to plaintext chunks, preserving order.

        Mirrors :meth:`encrypt`: serial below the parallel threshold,
        contiguous spans per worker above it, futures consumed in
        submission order so the earliest tampered chunk raises first —
        the abort is deterministic regardless of worker scheduling.
        """
        if len(trimmed) != len(stubs):
            raise ConfigurationError(
                f"{len(trimmed)} trimmed packages but {len(stubs)} stubs"
            )
        total = sum(len(package) for package in trimmed)
        if (
            self.workers == 1
            or len(trimmed) < 2
            or (self._spec is not None and total < self.min_parallel_bytes)
        ):
            self.serial_batches += 1
            return self._decrypt_serial(trimmed, stubs)
        executor = self._get_executor()
        if not self._executor_is_process:
            self.parallel_batches += 1
            return list(executor.map(self.scheme.decrypt_chunk, trimmed, stubs))
        spec = self._spec
        span = max(1, -(-len(trimmed) // self.workers))
        futures = []
        for start in range(0, len(trimmed), span):
            pairs = list(
                zip(trimmed[start : start + span], stubs[start : start + span])
            )
            futures.append(executor.submit(_decrypt_batch, *spec, pairs))
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool:  # pragma: no cover - worker crash
            self.close()
            self._spec = None
            self.serial_batches += 1
            return self._decrypt_serial(trimmed, stubs)
        self.parallel_batches += 1
        return [chunk for batch in results for chunk in batch]


class StubRekeyPool:
    """Runs stub-file re-encryption over batches, in parallel when it pays.

    The active-revocation hot path: each item is one whole stub file to
    decrypt under the old file key and re-encrypt under the new one.
    Nonces come from the caller (drawn on the client thread in file
    order), so the output is bit-identical to the serial path no matter
    how items are scheduled across workers.  Degrades exactly like
    :class:`ChunkTransformPool`: serial below ``min_parallel_bytes`` or
    for non-registry ciphers, threads when process pools are
    unavailable, and a serial redo if the pool breaks mid-batch.
    """

    def __init__(
        self,
        cipher: SymmetricCipher | None = None,
        workers: int | None = None,
        use_processes: bool = True,
        min_parallel_bytes: int = DEFAULT_MIN_PARALLEL_BYTES,
        default_stub_size: int = STUB_SIZE,
    ) -> None:
        if workers is None:
            workers = default_worker_count()
        if workers < 1:
            raise ConfigurationError("need at least one rekey worker")
        self.cipher = cipher or get_cipher()
        self.workers = workers
        self.min_parallel_bytes = min_parallel_bytes
        self.default_stub_size = default_stub_size
        self._spec = self._cipher_spec(self.cipher) if use_processes else None
        self._executor: Executor | None = None
        self._executor_is_process = False
        self.parallel_batches = 0
        self.serial_batches = 0

    @staticmethod
    def _cipher_spec(cipher: SymmetricCipher) -> str | None:
        """Registry name that rebuilds ``cipher`` in a fresh process."""
        name = getattr(cipher, "name", None)
        if not name:
            return None
        try:
            rebuilt = get_cipher(name)
        except ConfigurationError:
            return None
        if type(rebuilt) is not type(cipher):
            return None
        return name

    def _get_executor(self) -> Executor:
        if self._executor is None:
            if self._spec is not None:
                try:
                    self._executor = _make_process_pool(self.workers)
                    self._executor_is_process = True
                except (NotImplementedError, OSError, PermissionError):
                    self._spec = None
            if self._executor is None:
                self._executor = ThreadPoolExecutor(max_workers=self.workers)
                self._executor_is_process = False
        return self._executor

    def close(self) -> None:
        """Shut down worker processes/threads; the pool restarts lazily."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "StubRekeyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _reencrypt_serial(
        self, items: list[tuple[bytes, bytes, bytes, bytes]]
    ) -> list[bytes]:
        return [
            _reencrypt_one_stub_file(self.cipher, *item, self.default_stub_size)
            for item in items
        ]

    def reencrypt(
        self, items: list[tuple[bytes, bytes, bytes, bytes]]
    ) -> list[bytes]:
        """Re-encrypt ``(stub_file, old_key, new_key, nonce)`` items in order.

        Futures are consumed in submission order, so the earliest failing
        item raises first — the abort is deterministic regardless of
        worker scheduling.
        """
        total = sum(len(stub_file) for stub_file, *_rest in items)
        if (
            self.workers == 1
            or len(items) < 2
            or (self._spec is not None and total < self.min_parallel_bytes)
        ):
            self.serial_batches += 1
            return self._reencrypt_serial(items)
        executor = self._get_executor()
        if not self._executor_is_process:
            self.parallel_batches += 1
            return list(
                executor.map(
                    lambda item: _reencrypt_one_stub_file(
                        self.cipher, *item, self.default_stub_size
                    ),
                    items,
                )
            )
        spec = self._spec
        span = max(1, -(-len(items) // self.workers))
        futures = []
        for start in range(0, len(items), span):
            futures.append(
                executor.submit(
                    _reencrypt_stub_batch,
                    spec,
                    self.default_stub_size,
                    items[start : start + span],
                )
            )
        try:
            results = [future.result() for future in futures]
        except BrokenProcessPool:  # pragma: no cover - worker crash
            self.close()
            self._spec = None
            self.serial_batches += 1
            return self._reencrypt_serial(items)
        self.parallel_batches += 1
        return [stub_file for batch in results for stub_file in batch]
