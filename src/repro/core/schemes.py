"""REED's two chunk-encryption schemes (paper Section IV-B).

Both schemes turn a chunk ``M`` plus its MLE key ``K_M`` into

* a **trimmed package** — exactly ``len(M)`` bytes, deterministic in
  ``(M, K_M)``, so identical chunks deduplicate; and
* a 64-byte **stub** — the last bytes of the AONT package, without which
  the all-or-nothing property makes the trimmed package unrecoverable.

The stub is later encrypted under the per-file key (see
:mod:`repro.core.stubs`), so rekeying a file re-encrypts 64 bytes per
chunk (0.78 % of an 8 KB chunk) instead of the whole file.

**Basic scheme** (Fig. 2): CAONT keyed directly by the MLE key, with a
32-byte zero canary appended for integrity::

    C = (M || c) XOR G(K_M)          t = K_M XOR H(C)
    package = C || t                 stub = last 64 bytes

Cheap (one mask + one hash) but if ``K_M`` leaks, an adversary can strip
the mask from the trimmed package and recover most of ``M``.

**Enhanced scheme** (Fig. 3): first encrypt with the MLE key, then CAONT
the ciphertext *together with the MLE key* under the hash key
``h = H(C1 || K_M)``::

    C1 = E(K_M, M)                   h = H(C1 || K_M)
    C2 = (C1 || K_M) XOR G(h)        t = self-XOR(C2) XOR h
    package = C2 || t                stub = last 64 bytes

Even with ``K_M`` compromised, the package is protected by ``h``, which
depends on every bit of ``C2`` — and 64 bytes of ``C2`` live in the stub
under the file key.  The tail uses the cheap self-XOR fold instead of a
second hash because ``h`` itself already provides integrity.

Both decryptors recover ``K_M`` from the package, which is why REED never
uploads MLE keys (paper footnote 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.hashing import DIGEST_SIZE, fingerprint, sha256
from repro.util.bytesutil import ct_equal, split_at, xor_bytes, xor_fold
from repro.util.errors import ConfigurationError, IntegrityError

#: Stub size in bytes (paper Section V-A: 64 bytes per chunk, chosen to
#: resist brute force on the stub while preserving storage efficiency).
STUB_SIZE = 64

#: The fixed canary appended for integrity checking in the basic scheme
#: (Section V-A: 32 bytes of zeroes).
CANARY = b"\x00" * 32
CANARY_SIZE = len(CANARY)

#: MLE key size (SHA-256 output of the OPRF signature).
MLE_KEY_SIZE = DIGEST_SIZE


@dataclass(frozen=True)
class SplitPackage:
    """The encrypt output: deduplicable part, secret part, and identity.

    ``fingerprint`` is the hash of the trimmed package — the unit the
    server deduplicates on.  ``stub`` is still *plaintext* here; the
    client encrypts the per-file stub file under the file key.
    """

    trimmed_package: bytes
    stub: bytes
    fingerprint: bytes

    @property
    def package_size(self) -> int:
        return len(self.trimmed_package) + len(self.stub)


class EncryptionScheme(ABC):
    """Interface shared by the basic and enhanced schemes."""

    #: Registry name ("basic" / "enhanced").
    name: str

    def __init__(
        self,
        cipher: SymmetricCipher | None = None,
        stub_size: int = STUB_SIZE,
    ) -> None:
        if stub_size <= DIGEST_SIZE:
            raise ConfigurationError(
                f"stub must exceed the {DIGEST_SIZE}-byte package tail"
            )
        self.cipher = cipher or get_cipher()
        self.stub_size = stub_size

    # -- subclass hooks -----------------------------------------------------

    @abstractmethod
    def _package(self, chunk: bytes, mle_key: bytes) -> bytes:
        """Build the full AONT package ``C || t`` for a chunk."""

    @abstractmethod
    def _unpackage(self, package: bytes) -> bytes:
        """Invert :meth:`_package`, verifying integrity."""

    # -- public API -----------------------------------------------------------

    def min_chunk_size(self) -> int:
        """Smallest chunk this scheme can split into trimmed + stub."""
        # The package is chunk + 64 bytes; it must strictly exceed the stub.
        return max(1, self.stub_size - CANARY_SIZE - DIGEST_SIZE + 1)

    def encrypt_chunk(self, chunk: bytes, mle_key: bytes) -> SplitPackage:
        """Transform a chunk into (trimmed package, stub, fingerprint)."""
        if len(mle_key) != MLE_KEY_SIZE:
            raise ConfigurationError(f"MLE key must be {MLE_KEY_SIZE} bytes")
        if not chunk:
            raise ConfigurationError("cannot encrypt an empty chunk")
        package = self._package(chunk, mle_key)
        if len(package) <= self.stub_size:
            raise ConfigurationError(
                f"chunk of {len(chunk)} bytes yields a package not larger "
                f"than the {self.stub_size}-byte stub"
            )
        trimmed, stub = split_at(package, len(package) - self.stub_size)
        return SplitPackage(
            trimmed_package=trimmed, stub=stub, fingerprint=fingerprint(trimmed)
        )

    def decrypt_chunk(self, trimmed_package: bytes, stub: bytes) -> bytes:
        """Recover the chunk from its trimmed package and plaintext stub."""
        if len(stub) != self.stub_size:
            raise IntegrityError(
                f"stub has {len(stub)} bytes, expected {self.stub_size}"
            )
        return self._unpackage(trimmed_package + stub)


class BasicScheme(EncryptionScheme):
    """The basic encryption scheme: CAONT keyed by the MLE key + canary."""

    name = "basic"

    def _package(self, chunk: bytes, mle_key: bytes) -> bytes:
        padded = chunk + CANARY
        head = xor_bytes(padded, self.cipher.mask(mle_key, len(padded)))
        tail = xor_bytes(mle_key, sha256(head))
        return head + tail

    def _unpackage(self, package: bytes) -> bytes:
        if len(package) < DIGEST_SIZE + CANARY_SIZE + 1:
            raise IntegrityError("package too short for the basic scheme")
        head, tail = split_at(package, len(package) - DIGEST_SIZE)
        mle_key = xor_bytes(tail, sha256(head))
        padded = xor_bytes(head, self.cipher.mask(mle_key, len(head)))
        chunk, canary = split_at(padded, len(padded) - CANARY_SIZE)
        if not ct_equal(canary, CANARY):
            raise IntegrityError("basic scheme canary mismatch: chunk tampered")
        return chunk


class EnhancedScheme(EncryptionScheme):
    """The enhanced scheme: MLE encryption, then CAONT over C1 || K_M.

    Resilient to MLE-key leakage at the cost of one extra deterministic
    encryption pass (the paper measures basic ~24 % faster at 8 KB).
    """

    name = "enhanced"

    def _package(self, chunk: bytes, mle_key: bytes) -> bytes:
        c1 = self.cipher.deterministic_encrypt(mle_key, chunk)
        payload = c1 + mle_key
        hash_key = sha256(payload)
        head = xor_bytes(payload, self.cipher.mask(hash_key, len(payload)))
        tail = xor_bytes(xor_fold(head, DIGEST_SIZE), hash_key)
        return head + tail

    def _unpackage(self, package: bytes) -> bytes:
        if len(package) < 2 * DIGEST_SIZE + 1:
            raise IntegrityError("package too short for the enhanced scheme")
        head, tail = split_at(package, len(package) - DIGEST_SIZE)
        hash_key = xor_bytes(xor_fold(head, DIGEST_SIZE), tail)
        payload = xor_bytes(head, self.cipher.mask(hash_key, len(head)))
        if not ct_equal(sha256(payload), hash_key):
            raise IntegrityError("enhanced scheme hash-key mismatch: chunk tampered")
        c1, mle_key = split_at(payload, len(payload) - MLE_KEY_SIZE)
        return self.cipher.deterministic_decrypt(mle_key, c1)


_SCHEMES = {
    BasicScheme.name: BasicScheme,
    EnhancedScheme.name: EnhancedScheme,
}


def get_scheme(
    name: str,
    cipher: SymmetricCipher | None = None,
    stub_size: int = STUB_SIZE,
) -> EncryptionScheme:
    """Instantiate a scheme by name (``"basic"`` or ``"enhanced"``)."""
    cls = _SCHEMES.get(name)
    if cls is None:
        raise ConfigurationError(
            f"unknown scheme {name!r}; available: {sorted(_SCHEMES)}"
        )
    return cls(cipher=cipher, stub_size=stub_size)


def available_schemes() -> list[str]:
    return sorted(_SCHEMES)
