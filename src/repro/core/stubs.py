"""Stub files: the only data rekeying has to re-encrypt.

The client collects the stubs of all chunks of a file, in order, into a
single *stub file* and encrypts it with the file key (Section V-A).
Because each stub is 64 bytes, re-encrypting a whole 8 GB file's stub
file moves only ~8 MB — this is why active revocation in Experiment A.4
costs seconds, not the minutes a full re-upload would.

The encrypted stub file is authenticated: nonce + ciphertext + HMAC,
with the encryption and MAC keys derived from the file key under
distinct labels.  Stub files are deliberately *not* deduplicated — they
are ciphertext under per-file renewable keys.
"""

from __future__ import annotations

from repro.core.schemes import STUB_SIZE
from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.hashing import hmac_sha256, kdf
from repro.util.bytesutil import ct_equal, split_pieces
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ConfigurationError, IntegrityError

_NONCE_SIZE = 16
_MAC_SIZE = 32

#: Public alias: callers that pre-draw stub-file nonces (the rekeying
#: pipeline) need to know how many bytes to draw.
STUB_NONCE_SIZE = _NONCE_SIZE


def pack_stubs(stubs: list[bytes], stub_size: int = STUB_SIZE) -> bytes:
    """Concatenate per-chunk stubs into the plaintext stub-file body."""
    for i, stub in enumerate(stubs):
        if len(stub) != stub_size:
            raise ConfigurationError(
                f"stub {i} has {len(stub)} bytes, expected {stub_size}"
            )
    return Encoder().uint(stub_size).uint(len(stubs)).raw(b"".join(stubs)).done()


def unpack_stubs(body: bytes) -> list[bytes]:
    """Split a plaintext stub-file body back into per-chunk stubs."""
    dec = Decoder(body)
    stub_size = dec.uint()
    count = dec.uint()
    if stub_size <= 0:
        raise IntegrityError("stub file declares a non-positive stub size")
    payload = dec.raw(stub_size * count)
    dec.expect_end()
    return split_pieces(payload, stub_size)


def encrypt_stub_file(
    file_key: bytes,
    stubs: list[bytes],
    stub_size: int = STUB_SIZE,
    cipher: SymmetricCipher | None = None,
    rng: RandomSource | None = None,
    nonce: bytes | None = None,
) -> bytes:
    """Encrypt and authenticate a file's stubs under the file key.

    ``nonce`` may be supplied by the caller (the rekeying pipeline draws
    nonces on the client thread in file order, then fans the pure
    re-encryption out to workers — that keeps pipelined output
    bit-identical to the serial path); by default one is drawn from
    ``rng``.
    """
    cipher = cipher or get_cipher()
    if nonce is None:
        rng = rng or SYSTEM_RANDOM
        nonce = rng.random_bytes(_NONCE_SIZE)
    elif len(nonce) != _NONCE_SIZE:
        raise ConfigurationError(
            f"stub-file nonce must be {_NONCE_SIZE} bytes, got {len(nonce)}"
        )
    body = cipher.encrypt(
        kdf(file_key, "stub-enc"), nonce[: cipher.nonce_size], pack_stubs(stubs, stub_size)
    )
    mac = hmac_sha256(kdf(file_key, "stub-mac"), nonce + body)
    return nonce + body + mac


def decrypt_stub_file(
    file_key: bytes,
    data: bytes,
    cipher: SymmetricCipher | None = None,
) -> list[bytes]:
    """Decrypt a stub file; raises :class:`IntegrityError` on tampering or
    a wrong (e.g. revoked) file key."""
    cipher = cipher or get_cipher()
    if len(data) < _NONCE_SIZE + _MAC_SIZE:
        raise IntegrityError("stub file too short")
    nonce = data[:_NONCE_SIZE]
    body = data[_NONCE_SIZE:-_MAC_SIZE]
    mac = data[-_MAC_SIZE:]
    if not ct_equal(hmac_sha256(kdf(file_key, "stub-mac"), nonce + body), mac):
        raise IntegrityError("stub file failed authentication")
    plaintext = cipher.decrypt(
        kdf(file_key, "stub-enc"), nonce[: cipher.nonce_size], body
    )
    return unpack_stubs(plaintext)


def reencrypt_stub_file(
    old_file_key: bytes,
    new_file_key: bytes,
    data: bytes,
    cipher: SymmetricCipher | None = None,
    rng: RandomSource | None = None,
) -> bytes:
    """Re-encrypt a stub file under a new file key (active revocation)."""
    stubs = decrypt_stub_file(old_file_key, data, cipher)
    stub_size = len(stubs[0]) if stubs else STUB_SIZE
    return encrypt_stub_file(new_file_key, stubs, stub_size, cipher, rng)
