"""The batched, windowed rekeying pipeline.

Rekeying is REED's headline operation (Section IV-D): renewing a file's
key costs O(stub), not O(file).  This module closes the round-trip gap
the upload (batched ship) and download (windowed prefetch) pipelines
already closed for data: instead of ~5 RPCs per file, member files move
through the pipeline in windows of ``batch_size`` files, with one batch
RPC per stage per window.

Stages, mirroring the upload pipeline:

1. **fetch** (single worker thread) — ``keystore.get_many`` plus, for
   active revocation, ``recipe_get_many`` and ``stub_get_many``;
2. **plan + re-encrypt** (caller thread) — a per-file *planner* callback
   opens each key state, winds it forward, and seals the new record,
   drawing every random byte **on the caller thread in file order**;
   the pure stub re-encryption then fans out across the
   :class:`~repro.core.parallel.StubRekeyPool` with caller-drawn nonces,
   so pipelined output is bit-identical to the serial path;
3. **ship** (single worker thread) — ``stub_put_many`` →
   ``recipe_put_many`` → ``keystore.put_many``.  Key states commit
   *last*: until they land, the old record still opens the file, and the
   owner's deterministic wind re-derives the same new key on retry.

Up to ``pipeline_depth`` windows are in flight at once (window N+1
fetching while window N re-encrypts and window N−1 ships).  The first
per-item error — in file order within its window — aborts the pipeline
deterministically: a shared abort flag stops every window behind the
failing one from shipping anything.
"""

from __future__ import annotations

import contextvars
import threading
from collections import deque
from concurrent.futures import Future, ThreadPoolExecutor
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.parallel import StubRekeyPool
from repro.obs.tracing import Tracer
from repro.storage.keystore import KeyStateRecord

#: Files per pipeline window — one batch RPC per stage per window.
DEFAULT_REKEY_BATCH_SIZE = 64


@dataclass
class FileRekeyPlan:
    """Everything the ship stage needs for one file, planned in order."""

    file_id: str
    new_record: KeyStateRecord
    old_key_version: int
    new_key_version: int
    #: Active-mode fields; ``None`` for lazy revocation.
    stub_file: bytes | None = None
    old_file_key: bytes | None = None
    new_file_key: bytes | None = None
    nonce: bytes | None = None
    updated_recipe: bytes | None = None
    #: Filled by the re-encrypt stage.
    new_stub_file: bytes | None = None
    #: Stub bytes moved for this file (old + new encrypted sizes).
    moved_bytes: int = 0


#: planner(file_id, record, recipe_bytes, stub_file) -> FileRekeyPlan.
#: ``recipe_bytes``/``stub_file`` are None for lazy revocation.  Called
#: on the caller thread in file order — all rng draws belong here.
Planner = Callable[[str, KeyStateRecord, bytes | None, bytes | None], FileRekeyPlan]


@dataclass
class RekeyPipelineStats:
    """What one pipeline run did (fed into the caller's result object)."""

    files: int = 0
    batches: int = 0
    stub_bytes: int = 0
    #: ``(file_id, old_version, new_version, moved_bytes)`` per shipped
    #: file, in file order — enough to build per-file results without
    #: retaining the (potentially large) plans themselves.
    shipped: list[tuple[str, int, int, int]] = field(default_factory=list)


def _check_items(results: list) -> None:
    """Raise the first per-item error, in item (= file) order."""
    for status in results:
        if isinstance(status, Exception):
            raise status


def _keystore_get_many(keystore, file_ids: list[str]) -> list:
    get_many = getattr(keystore, "get_many", None)
    if get_many is not None:
        return get_many(file_ids)
    return [keystore.get(file_id) for file_id in file_ids]


def _keystore_put_many(keystore, records: list[KeyStateRecord]) -> None:
    put_many = getattr(keystore, "put_many", None)
    if put_many is not None:
        _check_items(put_many(records))
        return
    for record in records:
        keystore.put(record)


def _storage_get_many(storage, method: str, file_ids: list[str]) -> list:
    batched = getattr(storage, method + "_get_many", None)
    if batched is not None:
        return batched(file_ids)
    single = getattr(storage, method + "_get")
    return [single(file_id) for file_id in file_ids]


def _storage_put_many(
    storage, method: str, items: list[tuple[str, bytes]]
) -> None:
    batched = getattr(storage, method + "_put_many", None)
    if batched is not None:
        _check_items(batched(items))
        return
    single = getattr(storage, method + "_put")
    for file_id, data in items:
        single(file_id, data)


class RekeyPipeline:
    """One batched rekey run over a fixed list of file ids.

    The pipeline is policy-agnostic: the *planner* decides how each key
    state winds and how its new record is sealed (per-file ABE for
    :meth:`REEDClient.rekey_many`, symmetric group envelopes for
    :meth:`GroupManager.rekey`), so both ride the same fetch/re-encrypt/
    ship machinery.
    """

    def __init__(
        self,
        storage,
        keystore,
        planner: Planner,
        tracer: Tracer,
        stub_pool: StubRekeyPool | None = None,
        active: bool = False,
        batch_size: int = DEFAULT_REKEY_BATCH_SIZE,
        pipeline_depth: int = 2,
    ) -> None:
        self._storage = storage
        self._keystore = keystore
        self._planner = planner
        self._tracer = tracer
        self._stub_pool = stub_pool
        self._active = active
        self._batch_size = max(1, batch_size)
        self._depth = max(1, pipeline_depth)

    # -- stages --------------------------------------------------------------

    def _fetch(self, window: list[str]):
        with self._tracer.span("rekey.fetch", files=len(window)):
            records = _keystore_get_many(self._keystore, window)
            recipes: list = [None] * len(window)
            stub_files: list = [None] * len(window)
            if self._active:
                recipes = _storage_get_many(self._storage, "recipe", window)
                stub_files = _storage_get_many(self._storage, "stub", window)
            return records, recipes, stub_files

    def _transform(
        self, window: list[str], fetched, stats: RekeyPipelineStats
    ) -> list[FileRekeyPlan]:
        records, recipes, stub_files = fetched
        with self._tracer.span("rekey.reencrypt", files=len(window)):
            plans: list[FileRekeyPlan] = []
            for file_id, record, recipe, stub_file in zip(
                window, records, recipes, stub_files
            ):
                # Per-item fetch errors surface here, earliest file first.
                for item in (record, recipe, stub_file):
                    if isinstance(item, Exception):
                        raise item
                plans.append(self._planner(file_id, record, recipe, stub_file))
            if self._active:
                items = [
                    (p.stub_file, p.old_file_key, p.new_file_key, p.nonce)
                    for p in plans
                ]
                pool = self._stub_pool
                new_stub_files = pool.reencrypt(items)
                for plan, new_stub_file in zip(plans, new_stub_files):
                    plan.new_stub_file = new_stub_file
                    plan.moved_bytes = len(plan.stub_file) + len(new_stub_file)
                    stats.stub_bytes += plan.moved_bytes
        return plans

    def _ship(
        self,
        plans: list[FileRekeyPlan],
        abort: threading.Event,
        stats: RekeyPipelineStats,
    ) -> None:
        # A window behind a failed one never ships anything — that is
        # what makes the abort deterministic under pipelining.
        if abort.is_set():
            return
        try:
            with self._tracer.span("rekey.ship", files=len(plans)):
                if self._active:
                    _storage_put_many(
                        self._storage,
                        "stub",
                        [(p.file_id, p.new_stub_file) for p in plans],
                    )
                    _storage_put_many(
                        self._storage,
                        "recipe",
                        [(p.file_id, p.updated_recipe) for p in plans],
                    )
                # Key states last: a crash before this line leaves every
                # file readable under its old record, and the stub-side
                # recovery (decrypt-under-new-key, wind-forward) converges
                # on retry.
                _keystore_put_many(
                    self._keystore, [p.new_record for p in plans]
                )
        except BaseException:
            abort.set()
            raise
        stats.batches += 1
        stats.files += len(plans)
        for plan in plans:
            stats.shipped.append(
                (
                    plan.file_id,
                    plan.old_key_version,
                    plan.new_key_version,
                    plan.moved_bytes,
                )
            )

    # -- run -----------------------------------------------------------------

    def run(self, file_ids: list[str]) -> RekeyPipelineStats:
        stats = RekeyPipelineStats()
        windows = [
            list(file_ids[start : start + self._batch_size])
            for start in range(0, len(file_ids), self._batch_size)
        ]
        if not windows:
            return stats
        abort = threading.Event()
        if self._depth <= 1 or len(windows) == 1:
            for window in windows:
                plans = self._transform(window, self._fetch(window), stats)
                self._ship(plans, abort, stats)
            return stats

        fetch_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="reed-rekey-fetch"
        )
        ship_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="reed-rekey-ship"
        )
        fetching: deque[tuple[list[str], Future]] = deque()
        shipping: deque[Future] = deque()
        pending = iter(windows)

        def submit_fetch() -> None:
            window = next(pending, None)
            if window is not None:
                # copy_context: the worker keeps reporting round trips
                # into this operation's attribution scope.
                context = contextvars.copy_context()
                fetching.append(
                    (window, fetch_executor.submit(context.run, self._fetch, window))
                )

        try:
            for _ in range(max(1, self._depth - 1)):
                submit_fetch()
            while fetching:
                window, future = fetching.popleft()
                fetched = future.result()
                # Refill before transforming so window N+1 fetches while
                # window N re-encrypts and window N−1 ships.
                submit_fetch()
                plans = self._transform(window, fetched, stats)
                while len(shipping) >= self._depth:
                    shipping.popleft().result()
                context = contextvars.copy_context()
                shipping.append(
                    ship_executor.submit(context.run, self._ship, plans, abort, stats)
                )
            while shipping:
                shipping.popleft().result()
        except BaseException:
            # Stop queued-but-unstarted ships; in-flight futures that
            # cannot be cancelled see the abort flag instead.
            abort.set()
            raise
        finally:
            while fetching:
                fetching.popleft()[1].cancel()
            while shipping:
                shipping.popleft().cancel()
            fetch_executor.shutdown(wait=True)
            ship_executor.shutdown(wait=True)
        return stats
