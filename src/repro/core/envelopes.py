"""Key-state envelopes: how an encrypted key state is sealed.

Two envelope kinds live in the key store:

* **ABE envelopes** — the key state is CP-ABE-encrypted directly under
  the file's policy (the paper's per-file design, Section IV-C).
* **Group envelopes** — the key state is symmetrically encrypted under a
  *group key* derived from a group-level key state, which is itself
  ABE-protected.  This is the indirection that makes group rekeying
  (Section IV-D, "generalize rekeying for a group of files") cost one
  ABE operation per group instead of one per file — see
  :mod:`repro.core.groups`.

Envelopes are tagged so the client can open either transparently.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abe.cpabe import AbeCiphertext
from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.hashing import hmac_sha256, kdf
from repro.util.bytesutil import ct_equal
from repro.util.codec import Decoder, Encoder
from repro.util.errors import CorruptionError, IntegrityError

TAG_ABE = 1
TAG_GROUP = 2

_NONCE = 16
_MAC = 32


@dataclass(frozen=True)
class GroupEnvelope:
    """A key state sealed under a group key of a specific version."""

    group_id: str
    group_version: int
    nonce: bytes
    body: bytes
    mac: bytes


def seal_abe(ciphertext: AbeCiphertext) -> bytes:
    """Wrap an ABE ciphertext as a tagged envelope."""
    return Encoder().uint(TAG_ABE).blob(ciphertext.encode()).done()


def seal_group(
    group_id: str,
    group_version: int,
    group_key: bytes,
    key_state_bytes: bytes,
    cipher: SymmetricCipher | None = None,
    rng: RandomSource | None = None,
) -> bytes:
    """Seal a file's key state under a group key."""
    cipher = cipher or get_cipher()
    rng = rng or SYSTEM_RANDOM
    nonce = rng.random_bytes(_NONCE)
    body = cipher.encrypt(
        kdf(group_key, "group-envelope-enc"),
        nonce[: cipher.nonce_size],
        key_state_bytes,
    )
    header = Encoder().text(group_id).uint(group_version).done()
    mac = hmac_sha256(kdf(group_key, "group-envelope-mac"), header + nonce + body)
    return (
        Encoder()
        .uint(TAG_GROUP)
        .text(group_id)
        .uint(group_version)
        .blob(nonce)
        .blob(body)
        .blob(mac)
        .done()
    )


def open_group(
    envelope: GroupEnvelope,
    group_key: bytes,
    cipher: SymmetricCipher | None = None,
) -> bytes:
    """Decrypt a group envelope; raises on tampering or a wrong key."""
    cipher = cipher or get_cipher()
    header = Encoder().text(envelope.group_id).uint(envelope.group_version).done()
    expected = hmac_sha256(
        kdf(group_key, "group-envelope-mac"), header + envelope.nonce + envelope.body
    )
    if not ct_equal(expected, envelope.mac):
        raise IntegrityError("group envelope failed authentication")
    return cipher.decrypt(
        kdf(group_key, "group-envelope-enc"),
        envelope.nonce[: cipher.nonce_size],
        envelope.body,
    )


def decode_envelope(data: bytes) -> tuple[int, AbeCiphertext | GroupEnvelope]:
    """Parse a tagged envelope into (tag, payload)."""
    dec = Decoder(data)
    tag = dec.uint()
    if tag == TAG_ABE:
        ciphertext = AbeCiphertext.decode(dec.blob())
        dec.expect_end()
        return TAG_ABE, ciphertext
    if tag == TAG_GROUP:
        envelope = GroupEnvelope(
            group_id=dec.text(),
            group_version=dec.uint(),
            nonce=dec.blob(),
            body=dec.blob(),
            mac=dec.blob(),
        )
        dec.expect_end()
        return TAG_GROUP, envelope
    raise CorruptionError(f"unknown key-state envelope tag {tag}")
