"""Full re-encryption baseline (paper Sections I and II-C).

The other straw man: achieve rekeying by renewing the key-derivation
function and re-encrypting every affected chunk under fresh keys.  This
gives genuine protection — old keys become useless — but

* every chunk must be downloaded, re-encrypted, and re-uploaded, and
* the re-encrypted chunks no longer deduplicate against copies still
  encrypted under the old derivation function.

Both costs are modeled here (and measured at small scale in the
baselines bench) so the comparison against REED's stub-only rekeying is
quantitative: the paper quotes >= 64 s just to move an 8 GB file over a
1 Gb/s link, vs REED's 3.4 s active rekey.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.hashing import hmac_sha256, sha256
from repro.util.errors import ConfigurationError


@dataclass(frozen=True)
class ReencryptionCost:
    """Accounting for one full re-encryption rekey."""

    chunks: int
    bytes_downloaded: int
    bytes_reencrypted: int
    bytes_uploaded: int

    @property
    def bytes_moved(self) -> int:
        return self.bytes_downloaded + self.bytes_uploaded


class EpochedConvergentEncryption:
    """Convergent encryption with an epoch-keyed derivation function.

    The MLE key of a chunk is ``HMAC(epoch_secret, H(chunk))``: renewing
    the epoch secret renews every chunk key, which is exactly the
    "update the key derivation function directly" approach of Section
    II-C.  ``reencrypt_all`` performs the full rekey and returns its
    cost; tests verify the dedup break across epochs.
    """

    def __init__(self, cipher: SymmetricCipher | None = None) -> None:
        self.cipher = cipher or get_cipher()

    def chunk_key(self, epoch_secret: bytes, chunk: bytes) -> bytes:
        return hmac_sha256(epoch_secret, sha256(chunk))

    def encrypt_chunk(self, epoch_secret: bytes, chunk: bytes) -> tuple[bytes, bytes]:
        """Returns (ciphertext, fingerprint-of-ciphertext)."""
        ciphertext = self.cipher.deterministic_encrypt(
            self.chunk_key(epoch_secret, chunk), chunk
        )
        return ciphertext, sha256(ciphertext)

    def decrypt_chunk(
        self, epoch_secret: bytes, plain_hash: bytes, ciphertext: bytes
    ) -> bytes:
        """Decrypt using the stored key record (the chunk's plaintext
        hash), re-deriving the epoch-bound chunk key."""
        key = hmac_sha256(epoch_secret, plain_hash)
        chunk = self.cipher.deterministic_decrypt(key, ciphertext)
        if sha256(chunk) != plain_hash:
            raise ConfigurationError(
                "decrypted chunk does not match its key record"
            )
        return chunk

    def reencrypt_all(
        self,
        old_secret: bytes,
        new_secret: bytes,
        ciphertexts_and_plain_hashes: list[tuple[bytes, bytes]],
    ) -> tuple[list[tuple[bytes, bytes]], ReencryptionCost]:
        """Re-encrypt every chunk from the old epoch to the new one.

        ``ciphertexts_and_plain_hashes`` carries each old ciphertext and
        the chunk's plaintext hash (the stored key record).  Returns the
        new (ciphertext, fingerprint) list plus the movement accounting.
        """
        if old_secret == new_secret:
            raise ConfigurationError("rekey requires a fresh epoch secret")
        out = []
        downloaded = reencrypted = uploaded = 0
        for ciphertext, plain_hash in ciphertexts_and_plain_hashes:
            downloaded += len(ciphertext)
            old_key = hmac_sha256(old_secret, plain_hash)
            chunk = self.cipher.deterministic_decrypt(old_key, ciphertext)
            if sha256(chunk) != plain_hash:
                raise ConfigurationError("key record does not match ciphertext")
            new_ciphertext, fingerprint = self.encrypt_chunk(new_secret, chunk)
            reencrypted += len(chunk)
            uploaded += len(new_ciphertext)
            out.append((new_ciphertext, fingerprint))
        cost = ReencryptionCost(
            chunks=len(out),
            bytes_downloaded=downloaded,
            bytes_reencrypted=reencrypted,
            bytes_uploaded=uploaded,
        )
        return out, cost
