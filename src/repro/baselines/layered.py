"""Layered-encryption baseline (paper Section II-C).

The straw-man rekeying approach REED argues against: each chunk is
MLE-encrypted as usual, and the MLE key is *wrapped* under a per-user
master key.  Rekeying replaces the master key and re-wraps the (tiny)
key records, so it is cheap and preserves deduplication — but it has the
weakness the paper identifies: **the chunk ciphertext itself is never
re-keyed**.  If a chunk's MLE key leaks, that chunk is recoverable
forever, no matter how many times the master key rotates.

This module exists as an executable baseline for the comparison bench
(`benchmarks/bench_baselines.py`): it shares the dedup substrate with
REED so the storage numbers are directly comparable, and its documented
weakness is demonstrated in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.hashing import hmac_sha256, kdf, sha256
from repro.util.bytesutil import ct_equal
from repro.util.codec import Decoder, Encoder
from repro.util.errors import IntegrityError

_NONCE = 16
_MAC = 32


@dataclass(frozen=True)
class WrappedKey:
    """An MLE key encrypted under a master key (one per stored chunk)."""

    nonce: bytes
    body: bytes
    mac: bytes

    def encode(self) -> bytes:
        return Encoder().blob(self.nonce).blob(self.body).blob(self.mac).done()

    @classmethod
    def decode(cls, data: bytes) -> "WrappedKey":
        dec = Decoder(data)
        out = cls(nonce=dec.blob(), body=dec.blob(), mac=dec.blob())
        dec.expect_end()
        return out

    @property
    def size(self) -> int:
        return len(self.nonce) + len(self.body) + len(self.mac)


class LayeredEncryption:
    """MLE ciphertexts + master-key-wrapped MLE keys.

    ``encrypt_chunk`` produces a deterministic, dedup-friendly ciphertext
    and a wrapped key record; ``rekey_wrapped`` rewraps a record under a
    new master key *without touching the ciphertext* — the whole point,
    and the whole weakness, of this approach.
    """

    def __init__(self, cipher: SymmetricCipher | None = None) -> None:
        self.cipher = cipher or get_cipher()

    def encrypt_chunk(
        self,
        chunk: bytes,
        mle_key: bytes,
        master_key: bytes,
        rng: RandomSource | None = None,
    ) -> tuple[bytes, bytes, WrappedKey]:
        """Returns (ciphertext, fingerprint, wrapped key)."""
        ciphertext = self.cipher.deterministic_encrypt(mle_key, chunk)
        return ciphertext, sha256(ciphertext), self.wrap_key(mle_key, master_key, rng)

    def decrypt_chunk(
        self, ciphertext: bytes, wrapped: WrappedKey, master_key: bytes
    ) -> bytes:
        mle_key = self.unwrap_key(wrapped, master_key)
        return self.cipher.deterministic_decrypt(mle_key, ciphertext)

    def wrap_key(
        self,
        mle_key: bytes,
        master_key: bytes,
        rng: RandomSource | None = None,
    ) -> WrappedKey:
        rng = rng or SYSTEM_RANDOM
        nonce = rng.random_bytes(_NONCE)
        body = self.cipher.encrypt(
            kdf(master_key, "wrap-enc"), nonce[: self.cipher.nonce_size], mle_key
        )
        mac = hmac_sha256(kdf(master_key, "wrap-mac"), nonce + body)
        return WrappedKey(nonce=nonce, body=body, mac=mac)

    def unwrap_key(self, wrapped: WrappedKey, master_key: bytes) -> bytes:
        expected = hmac_sha256(
            kdf(master_key, "wrap-mac"), wrapped.nonce + wrapped.body
        )
        if not ct_equal(expected, wrapped.mac):
            raise IntegrityError("wrapped key failed authentication (wrong master?)")
        return self.cipher.decrypt(
            kdf(master_key, "wrap-enc"),
            wrapped.nonce[: self.cipher.nonce_size],
            wrapped.body,
        )

    def rekey_wrapped(
        self,
        wrapped: WrappedKey,
        old_master: bytes,
        new_master: bytes,
        rng: RandomSource | None = None,
    ) -> WrappedKey:
        """The layered-encryption rekey: rewrap; ciphertexts untouched."""
        return self.wrap_key(self.unwrap_key(wrapped, old_master), new_master, rng)


def rekey_bytes_moved(chunk_count: int, wrapped_key_size: int) -> int:
    """Bytes a layered-encryption rekey must rewrite for a file."""
    return chunk_count * wrapped_key_size
