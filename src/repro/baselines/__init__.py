"""Rekeying baselines the paper compares REED against (Section II-C).

* :mod:`repro.baselines.layered` — master-key-wrapped MLE keys: cheap
  rekeying, but leaked MLE keys stay dangerous forever.
* :mod:`repro.baselines.reencrypt` — epoch-keyed derivation with full
  re-encryption: sound, but moves the whole dataset and breaks dedup
  across epochs.
"""

from repro.baselines.layered import LayeredEncryption, WrappedKey, rekey_bytes_moved
from repro.baselines.reencrypt import EpochedConvergentEncryption, ReencryptionCost

__all__ = [
    "EpochedConvergentEncryption",
    "LayeredEncryption",
    "ReencryptionCost",
    "WrappedKey",
    "rekey_bytes_moved",
]
