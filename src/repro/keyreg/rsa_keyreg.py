"""RSA key regression (Fu, Kamara, Kohno — NDSS 2006).

Key regression gives REED lazy revocation (Section IV-C): a serial
sequence of *key states* where

* the **owner**, holding the private *derivation key*, can *wind* the
  state forward (``stm_{i+1} = stm_i^d mod N``), and
* any **member**, holding only the public derivation key, can *unwind*
  backward (``stm_{i-1} = stm_i^e mod N``) but can never move forward —
  computing forward would require inverting RSA.

A user given the current state can therefore derive every previous state
(and so the file keys of not-yet-re-encrypted data), while a user revoked
before state ``i+1`` can derive nothing from state ``i`` onward.  REED's
per-file key is the hash of the current key state.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.hashing import sha256
from repro.crypto.rsa import (
    DEFAULT_KEY_BITS,
    RSAPrivateKey,
    RSAPublicKey,
    generate_keypair,
)
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ConfigurationError

#: Derived symmetric key size (file keys are SHA-256 outputs).
DERIVED_KEY_SIZE = 32


@dataclass(frozen=True)
class KeyState:
    """One state in the regression chain: a version number and an RSA value."""

    version: int
    value: int

    def encode(self) -> bytes:
        return Encoder().uint(self.version).bigint(self.value).done()

    @classmethod
    def decode(cls, data: bytes) -> "KeyState":
        dec = Decoder(data)
        state = cls(version=dec.uint(), value=dec.bigint())
        dec.expect_end()
        return state

    def derive_key(self) -> bytes:
        """The symmetric key for this state: ``H(version || value)``.

        Binding the version in prevents two numerically equal states of
        different versions (probability ~0, but free to exclude) from
        colliding into one file key.
        """
        return sha256(self.encode())


class KeyRegressionOwner:
    """The file owner's side: can wind states forward.

    The owner's keypair is the user's *derivation key pair* (Section
    IV-C): the private half winds, the public half is shared so members
    can unwind.
    """

    def __init__(
        self,
        private_key: RSAPrivateKey | None = None,
        key_bits: int = DEFAULT_KEY_BITS,
        rng: RandomSource | None = None,
    ) -> None:
        self._rng = rng or SYSTEM_RANDOM
        self._private_key = private_key or generate_keypair(key_bits, rng=self._rng)

    @property
    def public_key(self) -> RSAPublicKey:
        return self._private_key.public

    def member(self) -> "KeyRegressionMember":
        return KeyRegressionMember(self.public_key)

    def initial_state(self) -> KeyState:
        """Draw a fresh version-0 state uniformly from the RSA domain."""
        value = 1 + self._rng.randint_below(self._private_key.n - 1)
        return KeyState(version=0, value=value)

    def wind(self, state: KeyState) -> KeyState:
        """Advance one version (a private RSA operation)."""
        return KeyState(
            version=state.version + 1, value=self._private_key.apply(state.value)
        )

    def wind_to(self, state: KeyState, version: int) -> KeyState:
        if version < state.version:
            raise ConfigurationError("cannot wind backward; use a member unwind")
        while state.version < version:
            state = self.wind(state)
        return state


class KeyRegressionMember:
    """A member's side: can only unwind states backward."""

    def __init__(self, public_key: RSAPublicKey) -> None:
        self._public_key = public_key

    @property
    def public_key(self) -> RSAPublicKey:
        return self._public_key

    def unwind(self, state: KeyState) -> KeyState:
        """Step back one version (a public RSA operation)."""
        if state.version == 0:
            raise ConfigurationError("cannot unwind below version 0")
        return KeyState(
            version=state.version - 1, value=self._public_key.apply(state.value)
        )

    def unwind_to(self, state: KeyState, version: int) -> KeyState:
        """Derive the state of an earlier ``version`` from a later one.

        This is how an authorized user reads a file that was last
        (re-)encrypted under an older file key: unwind the current state
        to the version recorded in the file's metadata.
        """
        if version > state.version:
            raise ConfigurationError(
                f"cannot derive future state {version} from version {state.version}"
            )
        while state.version > version:
            state = self.unwind(state)
        return state
