"""Key regression for lazy revocation (RSA construction of Fu et al.)."""

from repro.keyreg.rsa_keyreg import (
    DERIVED_KEY_SIZE,
    KeyRegressionMember,
    KeyRegressionOwner,
    KeyState,
)

__all__ = [
    "DERIVED_KEY_SIZE",
    "KeyRegressionMember",
    "KeyRegressionOwner",
    "KeyState",
]
