"""Client side of server-aided MLE key generation.

For every chunk fingerprint the client runs the blind-RSA OPRF with the
key manager (Section V-A):

    blind -> send batch -> unblind -> verify -> hash into the MLE key

with three performance measures from Section V-B layered on top:

* **batching** — up to ``batch_size`` per-chunk requests per round trip
  (the paper finds the key manager saturates around batch size 256);
* **caching** — an LRU fingerprint→key cache consulted first;
* **deduplication within a request** — repeated fingerprints in one call
  cost a single OPRF evaluation.

The key-manager *channel* is pluggable: a direct in-process call for
tests and experiments, or an RPC stub over TCP (:mod:`repro.net`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from typing import Protocol

from repro.crypto import blindrsa
from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.rsa import RSAPublicKey
from repro.mle.cache import MLEKeyCache
from repro.mle.keymanager import KeyManager
from repro.obs import scope as obs_scope
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.util.errors import ConfigurationError, KeyManagerError, RateLimitExceeded

#: Default number of per-chunk key requests batched per round trip
#: (Section V-B / Experiment A.1).
DEFAULT_BATCH_SIZE = 256

#: Bounded retries when the key manager rate-limits us.
DEFAULT_MAX_RETRIES = 8


class KeyManagerChannel(Protocol):
    """Transport abstraction over the key manager."""

    def public_key(self) -> RSAPublicKey:
        """Fetch the system-wide RSA public key."""
        ...

    def sign_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        """Submit one batch of blinded values; returns blind signatures."""
        ...

    def backoff_hint(self, client_id: str, batch_size: int) -> float:
        """Seconds to wait before a batch of this size will be admitted."""
        ...


class LocalKeyManagerChannel:
    """Directly invokes an in-process :class:`KeyManager` (no network)."""

    def __init__(self, manager: KeyManager) -> None:
        self._manager = manager

    def public_key(self) -> RSAPublicKey:
        return self._manager.public_key

    def sign_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        return self._manager.sign_batch(client_id, blinded_values)

    def derive_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        return self._manager.derive_batch(client_id, blinded_values)

    def backoff_hint(self, client_id: str, batch_size: int) -> float:
        return self._manager.seconds_until_allowed(client_id, batch_size)


class ServerAidedKeyClient:
    """Obtains MLE keys from the key manager via the blind-RSA OPRF."""

    #: This client reports per-operation deltas through
    #: :mod:`repro.obs.scope`, so callers can attribute counters to one
    #: upload without diffing lifetime totals.
    supports_attribution = True

    def __init__(
        self,
        channel: KeyManagerChannel,
        client_id: str,
        cache: MLEKeyCache | None = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        rng: RandomSource | None = None,
        sleep: Callable[[float], None] = time.sleep,
        max_retries: int = DEFAULT_MAX_RETRIES,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if batch_size < 1:
            raise ConfigurationError("batch size must be at least 1")
        self._channel = channel
        self._client_id = client_id
        self._cache = cache
        self._batch_size = batch_size
        self._rng = rng or SYSTEM_RANDOM
        self._sleep = sleep
        self._max_retries = max_retries
        self._public_key: RSAPublicKey | None = None
        #: OPRF evaluations actually performed (cache misses), for stats.
        self.oprf_evaluations = 0
        #: Requests answered from the cache.
        self.cache_hits = 0
        #: sign-batch RPCs issued to the key manager (including attempts
        #: rejected by rate limiting — they did cross the wire).
        self.round_trips = 0
        # The per-instance integers above stay the exact per-client
        # record; every bump is mirrored into the registry (process
        # totals, labeled by client) and the active attribution scope
        # (per-upload deltas — see repro.obs.scope).
        self._clock = clock
        self.metrics = metrics if metrics is not None else default_registry()
        labels = {"client": client_id}
        self._m_oprf = self.metrics.counter(
            "key_oprf_evaluations_total",
            "Blind-RSA OPRF evaluations paid for, by client.",
            labelnames=("client",),
        ).labels(**labels)
        self._m_hits = self.metrics.counter(
            "key_cache_hits_total",
            "MLE-key requests answered from the client-side cache.",
            labelnames=("client",),
        ).labels(**labels)
        self._m_trips = self.metrics.counter(
            "key_round_trips_total",
            "Key-manager RPCs issued (rate-limited attempts included).",
            labelnames=("client",),
        ).labels(**labels)
        self._m_rate_limited = self.metrics.counter(
            "key_rate_limited_total",
            "Key-manager RPCs rejected by rate limiting.",
            labelnames=("client",),
        ).labels(**labels)
        self._m_rpc_seconds = self.metrics.histogram(
            "key_rpc_seconds",
            "Latency of one key-manager batch round trip.",
            labelnames=("client",),
        ).labels(**labels)

    @property
    def public_key(self) -> RSAPublicKey:
        if self._public_key is None:
            self._public_key = self._channel.public_key()
        return self._public_key

    def clear_cache(self) -> None:
        if self._cache is not None:
            self._cache.clear()

    def stats(self) -> dict:
        """Counters for observability: OPRF work, cache wins, RPC trips.

        Includes the LRU cache's own :meth:`~repro.mle.cache.MLEKeyCache.stats`
        under ``"cache"`` when a cache is attached.

        .. deprecated:: the registry series (``key_oprf_evaluations_total``
           et al. on :attr:`metrics`, labeled by client) are the
           canonical source; this dict remains as a per-instance view.
        """
        data = {
            "oprf_evaluations": self.oprf_evaluations,
            "cache_hits": self.cache_hits,
            "round_trips": self.round_trips,
        }
        if self._cache is not None:
            data["cache"] = self._cache.stats()
        return data

    # ------------------------------------------------------------------

    def _send_with_backoff(self, blinded: list[int], rpc=None) -> list[int]:
        if rpc is None:
            rpc = self._channel.sign_batch
        for attempt in range(self._max_retries + 1):
            started = self._clock()
            try:
                self.round_trips += 1
                self._m_trips.inc()
                obs_scope.add("key_round_trips")
                result = rpc(self._client_id, blinded)
                self._m_rpc_seconds.observe(self._clock() - started)
                return result
            except RateLimitExceeded:
                self._m_rpc_seconds.observe(self._clock() - started)
                self._m_rate_limited.inc()
                if attempt == self._max_retries:
                    raise
                delay = self._channel.backoff_hint(self._client_id, len(blinded))
                # Nudge past the boundary to avoid a refill race.
                self._sleep(max(delay, 1e-4) * 1.05)
        raise AssertionError("unreachable")

    def _fetch_batch(self, fingerprints: list[bytes], rpc=None) -> list[bytes]:
        """One OPRF round trip for up to ``batch_size`` fingerprints."""
        public_key = self.public_key
        blinded_values: list[int] = []
        states: list[blindrsa.BlindingState] = []
        for fp in fingerprints:
            blinded, state = blindrsa.blind(public_key, fp, self._rng)
            blinded_values.append(blinded)
            states.append(state)
        signatures = self._send_with_backoff(blinded_values, rpc)
        if len(signatures) != len(blinded_values):
            raise KeyManagerError(
                f"key manager returned {len(signatures)} signatures for "
                f"{len(blinded_values)} requests"
            )
        keys = []
        for state, signature in zip(states, signatures):
            unblinded = blindrsa.unblind(public_key, state, signature)
            keys.append(blindrsa.signature_to_key(unblinded, public_key.byte_size))
        self.oprf_evaluations += len(keys)
        self._m_oprf.inc(len(keys))
        obs_scope.add("key_oprf_evaluations", len(keys))
        return keys

    def _resolve(self, fingerprints: Sequence[bytes], rpc=None) -> list[bytes]:
        """Cache-first, deduplicated, batched key resolution."""
        results: dict[bytes, bytes] = {}
        missing: list[bytes] = []
        seen: set[bytes] = set()
        for fp in fingerprints:
            if fp in seen:
                continue
            seen.add(fp)
            cached = self._cache.get(fp) if self._cache is not None else None
            if cached is not None:
                results[fp] = cached
                self.cache_hits += 1
                self._m_hits.inc()
                obs_scope.add("key_cache_hits")
            else:
                missing.append(fp)
        for start in range(0, len(missing), self._batch_size):
            batch = missing[start : start + self._batch_size]
            for fp, key in zip(batch, self._fetch_batch(batch, rpc)):
                results[fp] = key
                if self._cache is not None:
                    self._cache.put(fp, key)
        return [results[fp] for fp in fingerprints]

    def get_keys(self, fingerprints: Sequence[bytes]) -> list[bytes]:
        """Return MLE keys for ``fingerprints`` (order-preserving).

        Cache hits and duplicate fingerprints within the call are served
        without extra OPRF evaluations.  This is the per-batch reference
        path over the legacy ``km.sign_batch`` RPC; uploads use
        :meth:`derive_keys`, which produces bit-identical keys.
        """
        return self._resolve(fingerprints)

    def derive_keys(self, fingerprints: Sequence[bytes]) -> list[bytes]:
        """Batched whole-file key derivation (order-preserving).

        Blinds, ships, and unblinds a whole file's chunk fingerprints
        through the ``km.derive_batch`` RPC: the cache is consulted
        before anything touches the wire, duplicate fingerprints cost
        one evaluation, and the misses travel in at most
        ``ceil(misses / batch_size)`` round trips (one, for any file up
        to ``batch_size`` unique chunks).  Falls back to the legacy
        ``sign_batch`` RPC when the channel predates ``derive_batch``.
        Keys are bit-identical to :meth:`get_keys` — unblinding strips
        the only randomness, so both paths hash the same RSA signature.
        """
        rpc = getattr(self._channel, "derive_batch", None)
        return self._resolve(fingerprints, rpc)

    def get_key(self, fingerprint: bytes) -> bytes:
        return self.get_keys([fingerprint])[0]
