"""Message-locked encryption: convergent encryption and server-aided MLE."""

from repro.mle.cache import DEFAULT_CACHE_BYTES, MLEKeyCache
from repro.mle.convergent import (
    ConvergentCiphertext,
    ConvergentEncryption,
    convergent_key,
)
from repro.mle.keymanager import KeyManager, KeyManagerStats
from repro.mle.server_aided import (
    DEFAULT_BATCH_SIZE,
    KeyManagerChannel,
    LocalKeyManagerChannel,
    ServerAidedKeyClient,
)
from repro.mle.threshold import (
    ThresholdKeyManager,
    ThresholdKeyManagerChannel,
    build_group,
    split_key,
)

__all__ = [
    "ConvergentCiphertext",
    "ConvergentEncryption",
    "DEFAULT_BATCH_SIZE",
    "DEFAULT_CACHE_BYTES",
    "KeyManager",
    "KeyManagerChannel",
    "KeyManagerStats",
    "LocalKeyManagerChannel",
    "MLEKeyCache",
    "ServerAidedKeyClient",
    "ThresholdKeyManager",
    "ThresholdKeyManagerChannel",
    "build_group",
    "convergent_key",
    "split_key",
]
