"""Threshold key managers: k-of-n server-aided MLE key generation.

The paper considers a single key manager and notes the design "can be
generalized for multiple key managers for improved availability"
(Section III-A, citing Duan's distributed key generation).  This module
implements that generalization with **threshold RSA signatures** in the
style of Shoup:

* a dealer splits the OPRF private exponent ``d`` into Shamir shares
  over ``Z_phi(N)`` — each key manager holds one share and *no single
  manager (or any coalition below the threshold) can evaluate the OPRF
  alone*;
* each manager answers a blinded request with a partial signature
  ``y^{d_i} mod N``;
* any ``k`` partial signatures combine into the standard RSA signature
  ``y^d`` using integer-scaled Lagrange coefficients (the ``Δ = n!``
  trick avoids rationals; the final gcd step strips the ``Δ`` from the
  exponent).

Because the combined signature is *exactly* the single-manager OPRF
output, MLE keys — and therefore deduplication — are identical whether
a deployment runs one key manager or a 3-of-5 group, and the two can
interoperate on the same stored data.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.rsa import RSAPrivateKey, RSAPublicKey
from repro.mle.keymanager import DEFAULT_BURST, DEFAULT_RATE_LIMIT
from repro.util.errors import ConfigurationError, KeyManagerError
from repro.util.tokenbucket import TokenBucket


@dataclass(frozen=True)
class KeyShare:
    """One key manager's share of the OPRF exponent."""

    index: int  # 1-based Shamir evaluation point
    value: int  # d_i = f(index) mod phi(N)
    threshold: int
    players: int
    public_key: RSAPublicKey


def split_key(
    private_key: RSAPrivateKey,
    threshold: int,
    players: int,
    rng: RandomSource | None = None,
) -> list[KeyShare]:
    """Dealer: split ``d`` into ``players`` shares, any ``threshold`` of
    which can jointly sign.

    The dealer knows ``phi(N)`` (it generated the key); managers only
    ever see their own share.
    """
    if not 1 <= threshold <= players:
        raise ConfigurationError(f"invalid threshold {threshold} of {players}")
    rng = rng or SYSTEM_RANDOM
    phi = (private_key.p - 1) * (private_key.q - 1)
    # f(x) = d + a1 x + ... + a_{k-1} x^{k-1} over Z_phi.
    coefficients = [private_key.d % phi] + [
        rng.randint_below(phi) for _ in range(threshold - 1)
    ]
    shares = []
    for index in range(1, players + 1):
        value = 0
        for coefficient in reversed(coefficients):
            value = (value * index + coefficient) % phi
        shares.append(
            KeyShare(
                index=index,
                value=value,
                threshold=threshold,
                players=players,
                public_key=private_key.public,
            )
        )
    return shares


def _delta(players: int) -> int:
    return math.factorial(players)


def _scaled_lagrange(indexes: list[int], players: int) -> dict[int, int]:
    """Integer coefficients ``Δ * λ_i(0)`` for the subset ``indexes``."""
    delta = _delta(players)
    out = {}
    for i in indexes:
        numerator = delta
        denominator = 1
        for j in indexes:
            if j == i:
                continue
            numerator *= -j
            denominator *= i - j
        if numerator % denominator:
            raise AssertionError("Δ-scaled Lagrange coefficient not integral")
        out[i] = numerator // denominator
    return out


def combine_partials(
    public_key: RSAPublicKey,
    blinded: int,
    partials: dict[int, int],
    threshold: int,
    players: int,
) -> int:
    """Combine ``threshold`` partial signatures into ``blinded^d mod N``.

    ``partials`` maps share indexes to ``blinded^{d_i} mod N``.  Raises
    :class:`KeyManagerError` if the combination does not verify (a
    manager misbehaved or too few distinct shares were supplied).
    """
    if len(partials) < threshold:
        raise KeyManagerError(
            f"need {threshold} partial signatures, got {len(partials)}"
        )
    subset = sorted(partials)[:threshold]
    coefficients = _scaled_lagrange(subset, players)
    n = public_key.n
    combined = 1
    for index in subset:
        combined = (combined * pow(partials[index], coefficients[index], n)) % n
    # combined == blinded^(Δ d).  gcd(Δ, e) == 1 because e = 65537 is a
    # prime larger than any sane player count, so strip the Δ:
    delta = _delta(players)
    if math.gcd(delta, public_key.e) != 1:
        raise ConfigurationError("public exponent shares a factor with Δ = n!")
    a = pow(delta, -1, public_key.e)  # a*Δ = 1 + b*e for some integer b
    b = (a * delta - 1) // public_key.e
    signature = (pow(combined, a, n) * pow(blinded, -b, n)) % n
    if pow(signature, public_key.e, n) != blinded % n:
        raise KeyManagerError("combined threshold signature failed verification")
    return signature


class ThresholdKeyManager:
    """One member of a key-manager group, holding a single key share.

    Mirrors :class:`~repro.mle.keymanager.KeyManager`'s interface
    (per-client rate limiting, batch signing) but produces *partial*
    signatures.  A manager can be taken offline to exercise the
    availability story.
    """

    def __init__(
        self,
        share: KeyShare,
        rate_limit: float = DEFAULT_RATE_LIMIT,
        burst: float = DEFAULT_BURST,
        clock=time.monotonic,
    ) -> None:
        self._share = share
        self._rate_limit = rate_limit
        self._burst = burst
        self._clock = clock
        self._buckets: dict[str, TokenBucket] = {}
        self.available = True
        self.signatures = 0

    @property
    def index(self) -> int:
        return self._share.index

    @property
    def public_key(self) -> RSAPublicKey:
        return self._share.public_key

    def _bucket(self, client_id: str) -> TokenBucket:
        bucket = self._buckets.get(client_id)
        if bucket is None:
            bucket = TokenBucket(self._rate_limit, self._burst, clock=self._clock)
            self._buckets[client_id] = bucket
        return bucket

    def sign_batch_partial(self, client_id: str, blinded_values: list[int]) -> list[int]:
        if not self.available:
            raise KeyManagerError(f"key manager {self.index} is offline")
        if not blinded_values:
            return []
        if not self._bucket(client_id).try_take(len(blinded_values)):
            from repro.util.errors import RateLimitExceeded

            raise RateLimitExceeded(
                f"key manager {self.index} rate-limited client {client_id!r}"
            )
        n = self._share.public_key.n
        out = []
        for blinded in blinded_values:
            if not 0 <= blinded < n:
                raise KeyManagerError("blinded value out of the RSA domain")
            out.append(pow(blinded, self._share.value, n))
        self.signatures += len(out)
        return out


class ThresholdKeyManagerChannel:
    """Client-side channel over a key-manager group.

    Implements the same ``KeyManagerChannel`` protocol as the
    single-manager channel, so :class:`ServerAidedKeyClient` works
    unchanged.  Each batch is sent to managers in order until
    ``threshold`` of them answer; offline managers are skipped, giving
    availability up to ``players - threshold`` failures.
    """

    def __init__(self, managers: list[ThresholdKeyManager]) -> None:
        if not managers:
            raise ConfigurationError("need at least one key manager")
        self._managers = managers
        first = managers[0]._share
        self._threshold = first.threshold
        self._players = first.players
        self._public_key = first.public_key
        if len({m.index for m in managers}) != len(managers):
            raise ConfigurationError("duplicate key-manager share indexes")

    def public_key(self) -> RSAPublicKey:
        return self._public_key

    def sign_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        """Gather partials from ``threshold`` live managers and combine."""
        partials_per_manager: dict[int, list[int]] = {}
        errors: list[str] = []
        for manager in self._managers:
            if len(partials_per_manager) == self._threshold:
                break
            try:
                partials_per_manager[manager.index] = manager.sign_batch_partial(
                    client_id, blinded_values
                )
            except KeyManagerError as exc:
                errors.append(str(exc))
        if len(partials_per_manager) < self._threshold:
            raise KeyManagerError(
                f"only {len(partials_per_manager)} of {self._threshold} required "
                f"key managers responded: {'; '.join(errors)}"
            )
        signatures = []
        for position, blinded in enumerate(blinded_values):
            partials = {
                index: values[position]
                for index, values in partials_per_manager.items()
            }
            signatures.append(
                combine_partials(
                    self._public_key,
                    blinded,
                    partials,
                    self._threshold,
                    self._players,
                )
            )
        return signatures

    def backoff_hint(self, client_id: str, batch_size: int) -> float:
        hints = []
        for manager in self._managers:
            if not manager.available:
                continue
            try:
                hints.append(manager._bucket(client_id).seconds_until(batch_size))
            except NotImplementedError:
                # Remote stubs have no local bucket; use a modest default.
                hints.append(0.05)
        return max(hints) if hints else 1.0


def build_group(
    private_key: RSAPrivateKey,
    threshold: int,
    players: int,
    rng: RandomSource | None = None,
    rate_limit: float = DEFAULT_RATE_LIMIT,
) -> tuple[list[ThresholdKeyManager], ThresholdKeyManagerChannel]:
    """Dealer setup: split the key and stand up the manager group."""
    shares = split_key(private_key, threshold, players, rng)
    managers = [ThresholdKeyManager(share, rate_limit=rate_limit) for share in shares]
    return managers, ThresholdKeyManagerChannel(managers)
