"""Client-side MLE key cache.

Adjacent backups of the same file system share most chunks, so the REED
client keeps a byte-budgeted LRU cache (512 MB by default, Section V-B)
mapping chunk fingerprints to the MLE keys already obtained from the key
manager.  Cache hits skip the OPRF round trip entirely — this is what
turns the second upload in Experiment A.3 from key-generation-bound into
network-bound.

The paper notes (and Experiment B.2 relies on) the cache being cleared
between users so different users never share one client's cache.
"""

from __future__ import annotations

from repro.crypto.hashing import DIGEST_SIZE
from repro.util.lru import LRUCache
from repro.util.units import MiB

#: Default cache budget (paper Section V-B).
DEFAULT_CACHE_BYTES = 512 * MiB

#: Approximate per-entry footprint: fingerprint + key.
ENTRY_BYTES = 2 * DIGEST_SIZE


class MLEKeyCache:
    """LRU fingerprint → MLE-key cache with a byte budget."""

    def __init__(self, capacity_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        self._cache: LRUCache[bytes, bytes] = LRUCache(
            capacity_bytes, size_of=lambda _key: ENTRY_BYTES
        )

    def get(self, fingerprint: bytes) -> bytes | None:
        return self._cache.get(fingerprint)

    def put(self, fingerprint: bytes, mle_key: bytes) -> None:
        self._cache.put(fingerprint, mle_key)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> dict[str, int]:
        return self._cache.stats()
