"""The REED key manager (DupLESS-style server-aided MLE key generation).

The key manager holds a system-wide RSA keypair (the paper uses 1024-bit
RSA, Section V-A).  Clients send *blinded* chunk fingerprints in batches;
the key manager answers each with a blind RSA signature — one private-key
operation per chunk — without ever learning the fingerprints (oblivious
key generation, Section III-B).

To slow online brute-force attacks from compromised clients, requests are
rate-limited per client with a token bucket (Section II-A).  The manager
also keeps per-client accounting used by the evaluation harness.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.crypto import blindrsa
from repro.crypto.drbg import RandomSource
from repro.crypto.rsa import DEFAULT_KEY_BITS, RSAPrivateKey, RSAPublicKey, generate_keypair
from repro.util.errors import ConfigurationError, RateLimitExceeded
from repro.util.tokenbucket import TokenBucket

#: Default per-client sustained request rate (chunk keys per second).
#: Generous enough for legitimate backup workloads (the paper's key
#: manager saturates around 1600 signatures/s) while bounding brute force.
DEFAULT_RATE_LIMIT = 8192.0

#: Default burst: one maximum-size batch.
DEFAULT_BURST = 16384.0


@dataclass
class ClientQuota:
    """Per-client rate-limit state and accounting."""

    bucket: TokenBucket
    requests: int = 0
    rejected: int = 0


@dataclass
class KeyManagerStats:
    """Counters exposed for the evaluation harness."""

    clients: int = 0
    signatures: int = 0
    batches: int = 0
    #: Batches that arrived through the whole-file ``derive_batch``
    #: entry point (a subset of ``batches``).
    derive_batches: int = 0
    rejected: int = 0
    busy_seconds: float = 0.0


class KeyManager:
    """Transport-agnostic key-manager core.

    The networked deployment wraps this class behind an RPC service
    (:mod:`repro.net.rpc`); tests and single-process experiments call it
    directly.
    """

    def __init__(
        self,
        private_key: RSAPrivateKey | None = None,
        key_bits: int = DEFAULT_KEY_BITS,
        rate_limit: float = DEFAULT_RATE_LIMIT,
        burst: float = DEFAULT_BURST,
        rng: RandomSource | None = None,
        clock=time.monotonic,
    ) -> None:
        if private_key is None:
            private_key = generate_keypair(key_bits, rng=rng)
        self._private_key = private_key
        self._rate_limit = rate_limit
        self._burst = burst
        self._clock = clock
        self._quotas: dict[str, ClientQuota] = {}
        self._lock = threading.Lock()
        self.stats = KeyManagerStats()

    @property
    def public_key(self) -> RSAPublicKey:
        """The system-wide public key clients blind against."""
        return self._private_key.public

    def _quota_for(self, client_id: str) -> ClientQuota:
        with self._lock:
            quota = self._quotas.get(client_id)
            if quota is None:
                quota = ClientQuota(
                    bucket=TokenBucket(self._rate_limit, self._burst, clock=self._clock)
                )
                self._quotas[client_id] = quota
                self.stats.clients += 1
            return quota

    def sign_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        """Sign a batch of blinded fingerprints for ``client_id``.

        Raises :class:`RateLimitExceeded` when the client's token bucket
        cannot cover the batch; the client is expected to back off (the
        batch is all-or-nothing so partial progress never leaks through
        the limiter).
        """
        if not blinded_values:
            return []
        if len(blinded_values) > self._burst:
            raise ConfigurationError(
                f"batch of {len(blinded_values)} exceeds the maximum batch "
                f"size {int(self._burst)}"
            )
        quota = self._quota_for(client_id)
        if not quota.bucket.try_take(len(blinded_values)):
            quota.rejected += len(blinded_values)
            self.stats.rejected += len(blinded_values)
            raise RateLimitExceeded(
                f"client {client_id!r} exceeded the key-generation rate limit"
            )
        started = self._clock()
        signatures = [
            blindrsa.sign_blinded(self._private_key, value) for value in blinded_values
        ]
        elapsed = self._clock() - started
        with self._lock:
            quota.requests += len(blinded_values)
            self.stats.signatures += len(blinded_values)
            self.stats.batches += 1
            self.stats.busy_seconds += elapsed
        return signatures

    def derive_batch(self, client_id: str, blinded_values: list[int]) -> list[int]:
        """Whole-file key derivation: sign one file's fingerprints at once.

        Wire entry point for the batched upload protocol
        (``km.derive_batch``).  Semantics match :meth:`sign_batch` — the
        rate limiter is charged one token per fingerprint and the batch
        is admitted all-or-nothing — but the call is accounted
        separately so the evaluation harness can tell amortized
        whole-file round trips from legacy fixed-size batches.
        """
        signatures = self.sign_batch(client_id, blinded_values)
        if blinded_values:
            with self._lock:
                self.stats.derive_batches += 1
        return signatures

    def seconds_until_allowed(self, client_id: str, batch_size: int) -> float:
        """Back-off hint: seconds until a batch of ``batch_size`` is allowed."""
        return self._quota_for(client_id).bucket.seconds_until(batch_size)

    def client_stats(self, client_id: str) -> dict[str, int]:
        quota = self._quota_for(client_id)
        return {"requests": quota.requests, "rejected": quota.rejected}
