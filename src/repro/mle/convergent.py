"""Convergent encryption (CE) — the classic MLE instantiation.

CE (Douceur et al., ICDCS'02) derives the encryption key directly from
the message: ``K = H(M)``.  Identical messages yield identical keys and —
with deterministic encryption — identical ciphertexts, so deduplication
works on ciphertexts.

CE is the *baseline* REED compares against conceptually: it is secure
only for unpredictable messages (an adversary who can enumerate the
message space can enumerate keys too; Section II-A), and it has no story
for rekeying — which is the gap REED fills.  It is included both as a
substrate (MLE interface) and as the baseline in benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import SymmetricCipher, get_cipher
from repro.crypto.hashing import sha256
from repro.util.bytesutil import ct_equal
from repro.util.errors import IntegrityError


def convergent_key(message: bytes) -> bytes:
    """The CE key: the message's own cryptographic hash."""
    return sha256(message)


@dataclass(frozen=True)
class ConvergentCiphertext:
    """Deterministic CE ciphertext plus the tag used for dedup/integrity."""

    ciphertext: bytes
    tag: bytes


class ConvergentEncryption:
    """Stateless CE encryptor/decryptor over a pluggable cipher.

    The *tag* is ``H(ciphertext)`` — in MLE terms this provides tag
    consistency: the server dedups by tag and a client can detect a
    mismatched ciphertext.
    """

    def __init__(self, cipher: SymmetricCipher | None = None) -> None:
        self.cipher = cipher or get_cipher()

    def encrypt(self, message: bytes) -> tuple[ConvergentCiphertext, bytes]:
        """Encrypt, returning the ciphertext record and the CE key."""
        key = convergent_key(message)
        ciphertext = self.cipher.deterministic_encrypt(key, message)
        return ConvergentCiphertext(ciphertext=ciphertext, tag=sha256(ciphertext)), key

    def decrypt(self, record: ConvergentCiphertext, key: bytes) -> bytes:
        """Decrypt and verify both the tag and the key-message binding."""
        if not ct_equal(sha256(record.ciphertext), record.tag):
            raise IntegrityError("convergent ciphertext does not match its tag")
        message = self.cipher.deterministic_decrypt(key, record.ciphertext)
        if not ct_equal(convergent_key(message), key):
            raise IntegrityError("decrypted message does not match the CE key")
        return message
