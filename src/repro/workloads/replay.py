"""Trace replay: dedup accounting over snapshot streams.

Shared by the Experiment B.1 bench, the trace-replay example, and any
analysis notebook: replay daily snapshots through deduplication
accounting and report the three data types of Figure 9 — logical data,
physical (unique) data, and stub data — cumulatively per day.

This is the fingerprint-level computation the paper's storage figures
report; :mod:`repro.storage` provides the byte-level engine when actual
storage behaviour (containers, fragmentation) is wanted too.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.schemes import STUB_SIZE
from repro.workloads.fsl import Snapshot


@dataclass(frozen=True)
class DayAccounting:
    """Cumulative byte counts after one day of backups."""

    day: int
    logical_bytes: int
    physical_bytes: int
    stub_bytes: int

    @property
    def stored_bytes(self) -> int:
        return self.physical_bytes + self.stub_bytes

    @property
    def total_saving(self) -> float:
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.stored_bytes / self.logical_bytes


def replay_dedup_accounting(
    days: Iterable[list[Snapshot]],
    stub_size: int = STUB_SIZE,
) -> list[DayAccounting]:
    """Replay snapshots day by day; returns per-day cumulative counts.

    Deduplication is by trace fingerprint (identical fingerprints are
    identical chunks, the dataset's own convention); every logical chunk
    contributes ``stub_size`` bytes of non-deduplicable stub data.
    """
    seen: set[bytes] = set()
    logical = physical = stub = 0
    series: list[DayAccounting] = []
    for day_index, snapshots in enumerate(days):
        for snapshot in snapshots:
            for chunk in snapshot.chunks:
                logical += chunk.size
                stub += stub_size
                if chunk.fingerprint not in seen:
                    seen.add(chunk.fingerprint)
                    physical += chunk.size
        series.append(
            DayAccounting(
                day=day_index,
                logical_bytes=logical,
                physical_bytes=physical,
                stub_bytes=stub,
            )
        )
    return series


def format_accounting_table(series: list[DayAccounting], every: int = 1) -> str:
    """Render the Figure 9 table (sampled every ``every`` days)."""
    lines = [
        f"{'day':>5} {'logical':>14} {'physical':>14} {'stub':>14} {'saving':>8}"
    ]
    for entry in series:
        if entry.day % every and entry.day != series[-1].day:
            continue
        lines.append(
            f"{entry.day:>5} {entry.logical_bytes:>14,} "
            f"{entry.physical_bytes:>14,} {entry.stub_bytes:>14,} "
            f"{entry.total_saving:>8.2%}"
        )
    return "\n".join(lines)
