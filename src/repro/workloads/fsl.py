"""FSL-style backup traces (Experiments B.1 and B.2).

The paper's real-world evaluation replays the FSL *Fslhomes* dataset
(File systems and Storage Lab, Stony Brook): 147 daily snapshots of nine
users' home directories, 56.20 TB of pre-deduplicated data, where each
snapshot is a list of 48-bit chunk fingerprints with chunk sizes
(variable-size chunking, 8 KB average).

The dataset itself is not redistributable here, so this module provides

* the **trace format**: snapshot records of (fingerprint, size) pairs,
  with a binary reader/writer so the real dataset can be converted and
  dropped in;
* a **statistical generator** (:class:`FslhomesGenerator`) that emits
  snapshots with the dataset's published aggregate shape — per-day
  logical volume ramping over the collection period, heavy intra- and
  inter-user duplication (the paper measures a 98.6 % total saving), and
  a small daily churn of new unique chunks; and
* **trace-driven chunk reconstruction** exactly as the paper does it
  (Section VI-B): a chunk's bytes are its fingerprint repeated up to the
  recorded size, so identical (distinct) fingerprints yield identical
  (distinct) chunks.

Scale is a first-class parameter: ``scale=1.0`` is the paper's 56 TB;
experiments here run at ``scale≈1e-4`` (a few GB) and the *ratios*
(dedup saving, physical:stub split) are scale-invariant by construction.
"""

from __future__ import annotations

import random
from collections.abc import Iterator
from dataclasses import dataclass

from repro.util.codec import Decoder, Encoder
from repro.util.errors import ConfigurationError
from repro.util.units import GiB, KiB

#: FSL fingerprints are 48-bit (6-byte) values.
FINGERPRINT_SIZE = 6

#: Paper dataset constants (Fslhomes 2013, Section VI-B).
PAPER_USERS = 9
PAPER_DAYS = 147
PAPER_TOTAL_LOGICAL_GB = 57_548
PAPER_PHYSICAL_GB = 431.89
PAPER_STUB_GB = 380.14
PAPER_TOTAL_SAVING = 0.986
PAPER_DAY_MIN_GB = 290
PAPER_DAY_MAX_GB = 680


@dataclass(frozen=True)
class TraceChunk:
    """One trace record: a truncated fingerprint and the chunk size."""

    fingerprint: bytes
    size: int


@dataclass(frozen=True)
class Snapshot:
    """One user's daily backup, as a sequence of trace chunks."""

    user: str
    day: int
    chunks: tuple[TraceChunk, ...]

    @property
    def logical_bytes(self) -> int:
        return sum(chunk.size for chunk in self.chunks)

    def encode(self) -> bytes:
        enc = Encoder().text(self.user).uint(self.day).uint(len(self.chunks))
        for chunk in self.chunks:
            enc.raw(chunk.fingerprint).uint(chunk.size)
        return enc.done()

    @classmethod
    def decode(cls, data: bytes) -> "Snapshot":
        dec = Decoder(data)
        user = dec.text()
        day = dec.uint()
        count = dec.uint()
        chunks = tuple(
            TraceChunk(fingerprint=dec.raw(FINGERPRINT_SIZE), size=dec.uint())
            for _ in range(count)
        )
        dec.expect_end()
        return cls(user=user, day=day, chunks=chunks)


def chunk_bytes_from_fingerprint(fingerprint: bytes, size: int) -> bytes:
    """Reconstruct chunk content from its fingerprint (paper Section VI-B).

    "We reconstruct a chunk by repeatedly writing its fingerprint to a
    spare chunk until reaching the specified chunk size" — same
    fingerprints give the same bytes, distinct ones give distinct bytes.
    """
    if size <= 0:
        raise ConfigurationError("chunk size must be positive")
    repeats = size // len(fingerprint) + 1
    return (fingerprint * repeats)[:size]


@dataclass
class FslParameters:
    """Tunable shape of the generated Fslhomes-like trace.

    The defaults are calibrated against the paper's aggregates:

    * ``shared_fraction`` — portion of each user's home referencing the
      common pool (identical across users: system files, shared media);
    * ``intra_dup_factor`` — average number of times a private unique
      chunk recurs inside one user's home (copies, build artifacts);
    * ``daily_churn`` — fraction of a snapshot's bytes rewritten as new
      unique chunks each day.

    With the defaults, first-day unique data is ~15 % of first-day
    logical and daily new unique data is ~0.6 %, which replayed over 147
    days lands near the paper's 98.6 % total saving with a roughly even
    physical:stub split (Experiment B.1).
    """

    users: int = PAPER_USERS
    days: int = PAPER_DAYS
    scale: float = 1e-4
    mean_chunk_size: int = 9 * KiB
    min_chunk_size: int = 2 * KiB
    max_chunk_size: int = 16 * KiB
    shared_fraction: float = 0.40
    intra_dup_factor: float = 2.5
    daily_churn: float = 0.006
    seed: int = 2013

    def day_logical_bytes(self, day: int) -> int:
        """Total logical bytes across users on ``day`` (0-based).

        Linear ramp chosen so the 147-day total matches the paper's
        57,548 GB at ``scale=1.0`` (the paper reports 290–680 GB daily).
        """
        if self.days == 1:
            fraction = 0.0
        else:
            fraction = day / (self.days - 1)
        low = PAPER_DAY_MIN_GB * GiB
        # Endpoint giving the paper's total under a linear ramp:
        # (low + high)/2 * 147 = 57548 GB  =>  high ≈ 493 GB.
        high = (2 * PAPER_TOTAL_LOGICAL_GB / PAPER_DAYS - PAPER_DAY_MIN_GB) * GiB
        return int((low + (high - low) * fraction) * self.scale)


class FslhomesGenerator:
    """Statistical generator of Fslhomes-like daily snapshots.

    Iterate :meth:`days` for per-day lists of snapshots (one per user).
    Generation is deterministic in the seed.
    """

    def __init__(self, params: FslParameters | None = None) -> None:
        self.params = params or FslParameters()
        if not 0.0 <= self.params.shared_fraction <= 1.0:
            raise ConfigurationError("shared_fraction must be in [0, 1]")
        if self.params.intra_dup_factor < 1.0:
            raise ConfigurationError("intra_dup_factor must be >= 1")
        self._rng = random.Random(self.params.seed)
        self._next_chunk_id = 0
        #: Common-pool chunks referenced by every user (lazily grown).
        self._shared_pool: list[TraceChunk] = []
        #: Per-user current home contents (chunk lists, ordered).
        self._homes: dict[str, list[TraceChunk]] = {}

    # -- chunk fabrication ---------------------------------------------------

    def _new_chunk(self) -> TraceChunk:
        """Mint a globally fresh unique chunk with a plausible size."""
        chunk_id = self._next_chunk_id
        self._next_chunk_id += 1
        fingerprint = chunk_id.to_bytes(FINGERPRINT_SIZE, "big")
        p = self.params
        # Triangular size distribution across [min, max] with the mean
        # pulled toward mean_chunk_size — matches the 2/16 KB clamps of
        # Rabin chunking with the dataset's ~9 KB observed mean.
        size = int(
            self._rng.triangular(
                p.min_chunk_size, p.max_chunk_size, p.mean_chunk_size
            )
        )
        return TraceChunk(fingerprint=fingerprint, size=size)

    def _draw_shared(self, budget: int) -> list[TraceChunk]:
        """Reference ~``budget`` bytes of the common pool, growing it as
        needed so every user references the same chunks."""
        out: list[TraceChunk] = []
        taken = 0
        index = 0
        while taken < budget:
            if index >= len(self._shared_pool):
                self._shared_pool.append(self._new_chunk())
            chunk = self._shared_pool[index]
            out.append(chunk)
            taken += chunk.size
            index += 1
        return out

    def _draw_private(self, budget: int) -> list[TraceChunk]:
        """~``budget`` bytes of user-private data with intra-duplication."""
        out: list[TraceChunk] = []
        uniques: list[TraceChunk] = []
        taken = 0
        dup_probability = 1.0 - 1.0 / self.params.intra_dup_factor
        while taken < budget:
            if uniques and self._rng.random() < dup_probability:
                chunk = self._rng.choice(uniques)
            else:
                chunk = self._new_chunk()
                uniques.append(chunk)
            out.append(chunk)
            taken += chunk.size
        return out

    # -- day evolution ---------------------------------------------------

    def _initial_home(self, user_budget: int) -> list[TraceChunk]:
        shared_budget = int(user_budget * self.params.shared_fraction)
        home = self._draw_shared(shared_budget)
        home.extend(self._draw_private(user_budget - shared_budget))
        return home

    def _evolve_home(self, home: list[TraceChunk], user_budget: int) -> list[TraceChunk]:
        """Next day's home: churn a few chunks, grow to the new budget."""
        churned = list(home)
        # Replace ~daily_churn of the bytes with fresh unique chunks.
        # The final replacement is probabilistic so the *expected* churn
        # matches the budget even when the budget is below one chunk
        # (small-scale runs would otherwise overshoot by a whole chunk
        # per user per day).
        current = sum(chunk.size for chunk in churned)
        budget = current * self.params.daily_churn
        replaced = 0.0
        while churned and replaced < budget:
            index = self._rng.randrange(len(churned))
            size = churned[index].size
            remaining = budget - replaced
            if remaining < size and self._rng.random() >= remaining / size:
                replaced = budget
                break
            replaced += size
            churned[index] = self._new_chunk()
        # Grow (or shrink) toward the day's budget with duplicate data —
        # organic growth is mostly copies and downloads that other users
        # also have, so grow from the shared pool.
        current = sum(chunk.size for chunk in churned)
        if current < user_budget:
            churned.extend(self._draw_shared(user_budget - current))
        return churned

    # -- public API -----------------------------------------------------------

    def users(self) -> list[str]:
        return [f"user{index:03d}" for index in range(self.params.users)]

    def day(self, day: int) -> list[Snapshot]:
        """Snapshots for ``day`` (must be called in day order)."""
        p = self.params
        per_user = p.day_logical_bytes(day) // p.users
        snapshots = []
        for user in self.users():
            home = self._homes.get(user)
            if home is None:
                home = self._initial_home(per_user)
            else:
                home = self._evolve_home(home, per_user)
            self._homes[user] = home
            snapshots.append(Snapshot(user=user, day=day, chunks=tuple(home)))
        return snapshots

    def days(self) -> Iterator[list[Snapshot]]:
        for day in range(self.params.days):
            yield self.day(day)


# ---------------------------------------------------------------------------
# Trace files (so the real Fslhomes dataset can be converted and replayed)
# ---------------------------------------------------------------------------


def write_trace(path: str, snapshots: list[Snapshot]) -> None:
    """Write snapshots to a trace file (length-prefixed records)."""
    enc = Encoder().uint(len(snapshots))
    for snapshot in snapshots:
        enc.blob(snapshot.encode())
    with open(path, "wb") as handle:
        handle.write(enc.done())


def read_trace(path: str) -> list[Snapshot]:
    with open(path, "rb") as handle:
        data = handle.read()
    dec = Decoder(data)
    snapshots = [Snapshot.decode(dec.blob()) for _ in range(dec.uint())]
    dec.expect_end()
    return snapshots


# ---------------------------------------------------------------------------
# Plain-text snapshot format (for converted real FSL dumps)
# ---------------------------------------------------------------------------


def write_text_snapshot(path: str, snapshot: Snapshot) -> None:
    """Write a snapshot as text: one ``<hex fingerprint> <size>`` line per
    chunk, with a ``# user day`` header.

    The real Fslhomes dataset ships in fs-hasher's binary format; its
    bundled ``hf-stat`` tool dumps exactly this shape, so converted real
    snapshots drop straight into the replay harnesses.
    """
    with open(path, "w") as handle:
        handle.write(f"# {snapshot.user} {snapshot.day}\n")
        for chunk in snapshot.chunks:
            handle.write(f"{chunk.fingerprint.hex()} {chunk.size}\n")


def read_text_snapshot(path: str) -> Snapshot:
    """Parse the text snapshot format written by :func:`write_text_snapshot`."""
    user = "unknown"
    day = 0
    chunks: list[TraceChunk] = []
    with open(path) as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) >= 2:
                    user, day = parts[0], int(parts[1])
                continue
            try:
                hex_fp, size_text = line.split()
                fingerprint = bytes.fromhex(hex_fp)
                size = int(size_text)
            except ValueError as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: bad trace line {line!r}"
                ) from exc
            if len(fingerprint) != FINGERPRINT_SIZE:
                raise ConfigurationError(
                    f"{path}:{line_number}: fingerprint must be "
                    f"{FINGERPRINT_SIZE} bytes"
                )
            if size <= 0:
                raise ConfigurationError(
                    f"{path}:{line_number}: chunk size must be positive"
                )
            chunks.append(TraceChunk(fingerprint=fingerprint, size=size))
    return Snapshot(user=user, day=day, chunks=tuple(chunks))
