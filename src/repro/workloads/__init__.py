"""Workload generators: synthetic data and FSL-style backup traces."""

from repro.workloads.fsl import (
    FINGERPRINT_SIZE,
    FslhomesGenerator,
    FslParameters,
    Snapshot,
    TraceChunk,
    chunk_bytes_from_fingerprint,
    read_trace,
    write_trace,
)
from repro.workloads.replay import (
    DayAccounting,
    format_accounting_table,
    replay_dedup_accounting,
)
from repro.workloads.synthetic import duplicated_data, mutate, unique_data

__all__ = [
    "DayAccounting",
    "FINGERPRINT_SIZE",
    "FslParameters",
    "FslhomesGenerator",
    "Snapshot",
    "TraceChunk",
    "chunk_bytes_from_fingerprint",
    "duplicated_data",
    "format_accounting_table",
    "mutate",
    "read_trace",
    "replay_dedup_accounting",
    "unique_data",
    "write_trace",
]
