"""Synthetic workloads (Experiments A.1–A.4).

The paper's synthetic experiments use a 2 GB file of *globally unique*
chunks (no duplicate content) held in memory.  This module generates
such data deterministically (numpy PRNG — fast enough to build hundreds
of MB in milliseconds), plus helpers for controlled-duplication streams
and day-over-day mutation used in ablation benches.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigurationError


def unique_data(size: int, seed: int = 0) -> bytes:
    """``size`` bytes of deterministic pseudo-random (dedup-free) data."""
    if size < 0:
        raise ConfigurationError("size must be non-negative")
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def duplicated_data(size: int, duplicate_fraction: float, seed: int = 0, unit: int = 8192) -> bytes:
    """Data where ``duplicate_fraction`` of ``unit``-sized blocks repeat.

    Duplicate blocks are copies of a single hot block, giving an exactly
    controllable dedup ratio for fixed-size chunking at ``unit``.
    """
    if not 0.0 <= duplicate_fraction <= 1.0:
        raise ConfigurationError("duplicate_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    hot = rng.integers(0, 256, size=unit, dtype=np.uint8).tobytes()
    blocks = []
    produced = 0
    index = 0
    while produced < size:
        take = min(unit, size - produced)
        # Deterministic interleaving that hits the requested fraction.
        if (index * duplicate_fraction) % 1.0 + duplicate_fraction >= 1.0:
            blocks.append(hot[:take])
        else:
            blocks.append(
                rng.integers(0, 256, size=take, dtype=np.uint8).tobytes()
            )
        produced += take
        index += 1
    return b"".join(blocks)


def mutate(data: bytes, fraction: float, seed: int = 0, unit: int = 8192) -> bytes:
    """Rewrite ``fraction`` of ``unit``-sized blocks with fresh bytes.

    Models the day-over-day churn of backup snapshots: most blocks are
    untouched (and will deduplicate against the previous snapshot), a few
    are rewritten.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    out = bytearray(data)
    block_count = (len(data) + unit - 1) // unit
    rewrites = int(block_count * fraction)
    if rewrites == 0:
        return bytes(out)
    for block in rng.choice(block_count, size=rewrites, replace=False):
        start = int(block) * unit
        end = min(start + unit, len(data))
        out[start:end] = rng.integers(
            0, 256, size=end - start, dtype=np.uint8
        ).tobytes()
    return bytes(out)
