"""REED: a rekeying-aware encrypted deduplication storage system.

A from-scratch Python reproduction of *"Rekeying for Encrypted
Deduplication Storage"* (Li, Qin, Lee, Li — DSN 2016).

Quickstart::

    from repro import build_system, FilePolicy, RevocationMode

    system = build_system()
    alice = system.new_client("alice")
    policy = FilePolicy.for_users(["alice", "bob"])
    alice.upload("report", b"..." * 100_000, policy=policy)

    bob = system.new_client("bob")
    assert bob.download("report").data.startswith(b"...")

    # Revoke bob, re-encrypting the stub file immediately.
    alice.revoke_users("report", {"bob"}, RevocationMode.ACTIVE)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-figure reproductions.
"""

from repro.core import (
    FilePolicy,
    REEDClient,
    REEDServer,
    ReedSystem,
    RekeyResult,
    RevocationMode,
    UploadResult,
    build_system,
    get_scheme,
)

__version__ = "1.0.0"

__all__ = [
    "FilePolicy",
    "REEDClient",
    "REEDServer",
    "ReedSystem",
    "RekeyResult",
    "RevocationMode",
    "UploadResult",
    "__version__",
    "build_system",
    "get_scheme",
]
