"""Shared utilities for the REED reproduction.

This package holds small, dependency-free building blocks used across the
whole system: error types, byte-string manipulation (XOR, splitting),
a tag-length-value serialization codec, an LRU cache with byte budgeting,
a token-bucket rate limiter, and human-readable unit helpers.
"""

from repro.util.bytesutil import (
    ct_equal,
    split_at,
    split_pieces,
    xor_bytes,
    xor_fold,
)
from repro.util.codec import Decoder, Encoder, decode_fields, encode_fields
from repro.util.errors import (
    AccessDeniedError,
    ConfigurationError,
    CorruptionError,
    IntegrityError,
    KeyManagerError,
    NotFoundError,
    ProtocolError,
    RateLimitExceeded,
    ReproError,
    StorageError,
)
from repro.util.lru import LRUCache
from repro.util.tokenbucket import TokenBucket
from repro.util.units import GiB, KiB, MiB, format_bytes, format_rate

__all__ = [
    "AccessDeniedError",
    "ConfigurationError",
    "CorruptionError",
    "Decoder",
    "Encoder",
    "GiB",
    "IntegrityError",
    "KeyManagerError",
    "KiB",
    "LRUCache",
    "MiB",
    "NotFoundError",
    "ProtocolError",
    "RateLimitExceeded",
    "ReproError",
    "StorageError",
    "TokenBucket",
    "ct_equal",
    "decode_fields",
    "encode_fields",
    "format_bytes",
    "format_rate",
    "split_at",
    "split_pieces",
    "xor_bytes",
    "xor_fold",
]
