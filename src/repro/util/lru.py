"""A byte-budgeted least-recently-used cache.

REED clients keep a 512 MB LRU cache of recently generated MLE keys
(Section V-B, "Caching"): adjacent backup uploads share most chunks, so
cached keys avoid round trips to the key manager.  The cache is budgeted
in *bytes*, not entries, mirroring the paper's configuration.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Callable, Hashable
from typing import Generic, TypeVar

from repro.util.errors import ConfigurationError

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class LRUCache(Generic[K, V]):
    """Thread-safe LRU cache with a byte budget.

    ``size_of`` maps a value to its byte cost (defaults to treating each
    entry as one byte, i.e. an entry-count budget).  When an insertion
    pushes the total cost over ``capacity``, least-recently-used entries
    are evicted until the cache fits.
    """

    def __init__(
        self,
        capacity: int,
        size_of: Callable[[V], int] | None = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("LRU capacity must be positive")
        self._capacity = capacity
        self._size_of = size_of or (lambda _value: 1)
        self._entries: OrderedDict[K, tuple[V, int]] = OrderedDict()
        self._used = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def used(self) -> int:
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: K) -> V | None:
        """Return the cached value and mark it most recently used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting LRU entries as needed."""
        cost = self._size_of(value)
        if cost > self._capacity:
            # An oversized value can never fit; caching it would evict
            # everything for no benefit.
            return
        with self._lock:
            existing = self._entries.pop(key, None)
            if existing is not None:
                self._used -= existing[1]
            self._entries[key] = (value, cost)
            self._used += cost
            while self._used > self._capacity:
                _old_key, (_old_value, old_cost) = self._entries.popitem(last=False)
                self._used -= old_cost
                self.evictions += 1

    def pop(self, key: K) -> V | None:
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self._used -= entry[1]
            return entry[0]

    def clear(self) -> None:
        """Drop all entries (the trace experiment clears per-user caches)."""
        with self._lock:
            self._entries.clear()
            self._used = 0

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "used_bytes": self._used,
                "capacity_bytes": self._capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
