"""Exception hierarchy for the REED reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the broad failure classes below.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed or invoked with invalid parameters."""


class IntegrityError(ReproError):
    """Decrypted or decoded data failed an integrity check.

    Raised when a CAONT canary mismatches, an enhanced-scheme hash key does
    not verify, or a fingerprint does not match the stored chunk.  Per the
    paper's security goals (Section III-B), clients abort reconstruction on
    any tampered chunk.
    """


class CorruptionError(ReproError):
    """Stored bytes could not be parsed (framing/codec level damage)."""


class AccessDeniedError(ReproError):
    """A user's attributes do not satisfy the policy protecting a key state."""


class KeyManagerError(ReproError):
    """The key manager rejected or failed a key-generation request."""


class RateLimitExceeded(KeyManagerError):
    """The key manager's per-client rate limiter rejected a request batch."""


class StorageError(ReproError):
    """The storage backend failed an operation."""


class NotFoundError(StorageError):
    """A requested object (chunk, recipe, key state, file) does not exist."""


class ProtocolError(ReproError):
    """An RPC peer sent a malformed or unexpected message."""
