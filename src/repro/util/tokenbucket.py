"""Token-bucket rate limiter.

The DupLESS-style key manager rate-limits per-client key-generation
requests to slow online brute-force attacks (Section II-A / III-B).  A
token bucket allows short bursts (a full batch of 256 per-chunk requests)
while bounding the sustained request rate.
"""

from __future__ import annotations

import threading
import time

from repro.util.errors import ConfigurationError


class TokenBucket:
    """Classic token bucket with injectable clock for deterministic tests.

    ``rate`` tokens accrue per second up to ``burst`` tokens.  ``try_take``
    is non-blocking; callers that want back-pressure can use
    ``seconds_until(n)`` to sleep for exactly the needed interval.
    """

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        if rate <= 0 or burst <= 0:
            raise ConfigurationError("rate and burst must be positive")
        self._rate = float(rate)
        self._burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    @property
    def rate(self) -> float:
        return self._rate

    @property
    def burst(self) -> float:
        return self._burst

    def _refill_locked(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self._burst, self._tokens + elapsed * self._rate)

    def available(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; return whether it succeeded."""
        if amount <= 0:
            raise ConfigurationError("token amount must be positive")
        with self._lock:
            self._refill_locked()
            if self._tokens >= amount:
                self._tokens -= amount
                return True
            return False

    def seconds_until(self, amount: float = 1.0) -> float:
        """Seconds until ``amount`` tokens will be available (0 if now).

        Amounts above the burst size can never be satisfied; callers must
        split such requests (the key manager splits oversized batches).
        """
        if amount > self._burst:
            raise ConfigurationError(
                f"requested {amount} tokens exceeds burst capacity {self._burst}"
            )
        with self._lock:
            self._refill_locked()
            deficit = amount - self._tokens
            if deficit <= 0:
                return 0.0
            return deficit / self._rate
