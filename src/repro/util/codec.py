"""A small deterministic binary codec for on-wire and on-disk structures.

REED serializes file recipes, key-state envelopes, RPC messages, and
container indexes.  Rather than pickling (unsafe across trust boundaries)
or JSON (no clean bytes support), this module provides a compact
length-prefixed codec with explicit types:

* unsigned varints (LEB128)
* length-prefixed byte strings
* UTF-8 strings
* big integers (for RSA values)
* homogeneous lists

The format is deterministic: encoding the same values always yields the
same bytes, which matters because fingerprints of encoded structures are
used as storage keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.util.errors import CorruptionError


class Encoder:
    """Append-only encoder producing deterministic bytes."""

    def __init__(self) -> None:
        self._parts: list[bytes] = []

    def uint(self, value: int) -> "Encoder":
        """Encode an unsigned integer as a LEB128 varint."""
        if value < 0:
            raise ValueError(f"uint cannot encode negative value {value}")
        out = bytearray()
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
        self._parts.append(bytes(out))
        return self

    def raw(self, data: bytes) -> "Encoder":
        """Append raw bytes with no framing (caller knows the length)."""
        self._parts.append(bytes(data))
        return self

    def blob(self, data: bytes) -> "Encoder":
        """Encode a length-prefixed byte string."""
        self.uint(len(data))
        self._parts.append(bytes(data))
        return self

    def text(self, value: str) -> "Encoder":
        """Encode a UTF-8 string as a blob."""
        return self.blob(value.encode("utf-8"))

    def bigint(self, value: int) -> "Encoder":
        """Encode a non-negative big integer (e.g. an RSA value)."""
        if value < 0:
            raise ValueError("bigint cannot encode negative values")
        length = (value.bit_length() + 7) // 8
        return self.blob(value.to_bytes(length, "big"))

    def boolean(self, value: bool) -> "Encoder":
        return self.uint(1 if value else 0)

    def list_of(self, items: Iterable[bytes]) -> "Encoder":
        """Encode a list of blobs, prefixed by the element count."""
        items = list(items)
        self.uint(len(items))
        for item in items:
            self.blob(item)
        return self

    def done(self) -> bytes:
        return b"".join(self._parts)


class Decoder:
    """Sequential decoder matching :class:`Encoder`'s output."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise CorruptionError(
                f"decoder underrun: need {n} bytes at offset {self._pos}, "
                f"have {self.remaining}"
            )
        out = self._data[self._pos : self._pos + n]
        self._pos += n
        return out

    def uint(self) -> int:
        value = 0
        shift = 0
        while True:
            if self._pos >= len(self._data):
                raise CorruptionError("decoder underrun: truncated varint")
            byte = self._data[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise CorruptionError("varint too long")

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def blob(self) -> bytes:
        return self._take(self.uint())

    def text(self) -> str:
        try:
            return self.blob().decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptionError(f"invalid UTF-8 in encoded text: {exc}") from exc

    def bigint(self) -> int:
        return int.from_bytes(self.blob(), "big")

    def boolean(self) -> bool:
        return bool(self.uint())

    def list_of(self) -> list[bytes]:
        return [self.blob() for _ in range(self.uint())]

    def expect_end(self) -> None:
        """Raise if any bytes remain undecoded (trailing-garbage check)."""
        if self.remaining:
            raise CorruptionError(f"{self.remaining} trailing bytes after decode")


def encode_fields(*fields: bytes) -> bytes:
    """Encode a flat tuple of byte-string fields."""
    enc = Encoder()
    for field in fields:
        enc.blob(field)
    return enc.done()


def decode_fields(data: bytes, count: int) -> Sequence[bytes]:
    """Decode exactly ``count`` byte-string fields; rejects trailing bytes."""
    dec = Decoder(data)
    fields = [dec.blob() for _ in range(count)]
    dec.expect_end()
    return fields
