"""Byte-size constants and human-readable formatting.

The paper quotes sizes in KB/MB/GB/TB (binary units) and speeds in MB/s;
these helpers keep the experiment harnesses readable.
"""

from __future__ import annotations

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB
TiB = 1024 * GiB

_SUFFIXES = ["B", "KB", "MB", "GB", "TB", "PB"]


def format_bytes(n: float) -> str:
    """Render a byte count with binary units, e.g. ``format_bytes(8192) == '8.0KB'``."""
    value = float(n)
    for suffix in _SUFFIXES:
        if abs(value) < 1024.0 or suffix == _SUFFIXES[-1]:
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_rate(bytes_per_second: float) -> str:
    """Render a throughput in MB/s, the unit the paper's figures use."""
    return f"{bytes_per_second / MiB:.1f}MB/s"
