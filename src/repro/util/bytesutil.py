"""Byte-string helpers used throughout the cryptographic layers.

The AONT constructions XOR large masks against messages and fold packages
into fixed-size pieces; these helpers centralize that logic with fast
``int.from_bytes`` based implementations (pure Python, no numpy needed on
the critical path).
"""

from __future__ import annotations

import hmac

from repro.util.errors import ConfigurationError


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """Return ``a XOR b``; the inputs must have equal length.

    Implemented via arbitrary-precision integers, which is the fastest
    portable way to XOR large buffers in pure Python (roughly 100x faster
    than a byte-by-byte loop for megabyte inputs).
    """
    if len(a) != len(b):
        raise ConfigurationError(
            f"xor_bytes requires equal lengths, got {len(a)} and {len(b)}"
        )
    n = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")).to_bytes(n, "big")


def xor_fold(data: bytes, piece_size: int) -> bytes:
    """XOR-fold ``data`` into a single ``piece_size``-byte value.

    The data is divided into consecutive ``piece_size``-byte pieces (the
    final piece is zero-padded on the right) and all pieces are XORed
    together.  This is the "self-XOR" operation of REED's enhanced
    encryption scheme (Section IV-B): the result cannot be predicted
    without knowing the entire content of the input.
    """
    if piece_size <= 0:
        raise ConfigurationError("piece_size must be positive")
    acc = 0
    for offset in range(0, len(data), piece_size):
        piece = data[offset : offset + piece_size]
        if len(piece) < piece_size:
            piece = piece + b"\x00" * (piece_size - len(piece))
        acc ^= int.from_bytes(piece, "big")
    return acc.to_bytes(piece_size, "big")


def split_at(data: bytes, index: int) -> tuple[bytes, bytes]:
    """Split ``data`` into ``(data[:index], data[index:])`` with bounds checks."""
    if index < 0 or index > len(data):
        raise ConfigurationError(
            f"split index {index} out of range for {len(data)} bytes"
        )
    return data[:index], data[index:]


def split_pieces(data: bytes, piece_size: int) -> list[bytes]:
    """Split ``data`` into consecutive pieces of ``piece_size`` bytes.

    The final piece may be shorter.  An empty input yields an empty list.
    """
    if piece_size <= 0:
        raise ConfigurationError("piece_size must be positive")
    return [data[i : i + piece_size] for i in range(0, len(data), piece_size)]


def ct_equal(a: bytes, b: bytes) -> bool:
    """Constant-time byte-string comparison (wraps :func:`hmac.compare_digest`)."""
    return hmac.compare_digest(a, b)
