"""Asyncio-native multiplexed RPC server.

:class:`AsyncTcpServer` replaces the thread-per-connection transport
with an event loop: one accept loop, one lightweight task per
connection, and one dispatch task per *request*.  Because requests are
dispatched as they are read — instead of a worker owning the connection
until its current request finishes — a slow ``chunk_get_batch`` no
longer blocks the next request on the same socket, and 100+ concurrent
clients per node stay live on a handful of threads.

Design points:

* **Blocking handlers need no rewrite.**  :class:`~repro.net.rpc.ServiceRegistry`
  handlers are ordinary synchronous callables; the server runs them on a
  bounded :class:`~concurrent.futures.ThreadPoolExecutor` (``max_workers``)
  via ``run_in_executor``.  ``max_workers`` therefore bounds *handler
  concurrency*, not connection count — the decoupling that lets one node
  hold thousands of idle connections without a thread each.
* **Out-of-order responses.**  Responses are written as their handlers
  finish, correlated by the wire-level ``message_id`` that every
  :class:`~repro.net.message.Message` already carries.  A multiplexed
  client (:class:`~repro.net.tcp.TcpConnection`) matches them back up;
  the old one-in-flight client still works because any completion order
  of a single request is in order.
* **Backpressure.**  Each connection admits at most ``connection_window``
  in-flight requests; when the window is full the server stops reading
  that socket, so a flooding sender blocks in the kernel instead of
  growing an unbounded queue server-side.
* **Dead-peer protection.**  TCP keepalives are enabled on every
  accepted socket and a configurable ``idle_timeout`` bounds how long a
  connection may sit without completing a frame; an idle or half-dead
  peer is dropped and counted in ``tcp_idle_drops_total``.
* **Graceful drain.**  ``stop(drain=True)`` closes the listener at once
  but gives every in-flight request up to ``timeout`` seconds to finish
  and flush its response, exactly like the threaded server did.

The metrics surface is a superset of the threaded server's: the same
``tcp_*`` series (so dashboards and the metrics gate keep working) plus
``tcp_idle_drops_total`` and the ``aio_*`` series documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.net.message import MAX_MESSAGE_BYTES, Message, frame
from repro.net.rpc import ServiceRegistry
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError

#: Default size of the handler executor.  With the threaded server this
#: was also the number of concurrently-served *connections*; here it
#: bounds concurrently-*executing handlers* only.
DEFAULT_MAX_WORKERS = 16

#: Default per-connection in-flight request window: how many requests
#: from one socket may be dispatched (queued or executing or flushing)
#: before the server stops reading that socket.
DEFAULT_CONNECTION_WINDOW = 32

#: Default idle read timeout: a connection that completes no frame for
#: this long is dropped (``tcp_idle_drops_total``).  Generous because
#: pipeline clients legitimately sit idle between operations; TCP
#: keepalives catch dead peers well before this fires.
DEFAULT_IDLE_TIMEOUT = 600.0

#: TCP keepalive cadence (seconds idle before probing, probe interval,
#: probes before the kernel declares the peer dead).
KEEPALIVE_IDLE = 60
KEEPALIVE_INTERVAL = 15
KEEPALIVE_COUNT = 4


def tune_socket(sock: socket.socket) -> None:
    """Low-latency + dead-peer options shared by client and server.

    ``TCP_NODELAY`` for small framed RPCs, ``SO_KEEPALIVE`` with an
    aggressive-ish cadence so a peer that vanished without a FIN (pulled
    cable, OOM-killed process) is detected in minutes, not hours.  The
    per-option constants are missing on some platforms; each is applied
    best-effort.
    """
    try:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    except OSError:
        return
    for option, value in (
        ("TCP_KEEPIDLE", KEEPALIVE_IDLE),
        ("TCP_KEEPINTVL", KEEPALIVE_INTERVAL),
        ("TCP_KEEPCNT", KEEPALIVE_COUNT),
    ):
        if hasattr(socket, option):
            try:
                sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)
            except OSError:
                pass


class _Connection:
    """Per-connection server state, touched only on the event loop."""

    __slots__ = ("writer", "write_lock", "window", "tasks", "outstanding", "_seq")

    def __init__(self, writer: asyncio.StreamWriter, window: int) -> None:
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.window = asyncio.Semaphore(window)
        self.tasks: set[asyncio.Task] = set()
        #: Sequence numbers of requests read but not yet responded to —
        #: used to detect (and count) out-of-order completions.
        self.outstanding: set[int] = set()
        self._seq = 0

    def next_seq(self) -> int:
        self._seq += 1
        return self._seq


class AsyncTcpServer:
    """Serves a :class:`ServiceRegistry` on an asyncio event loop.

    The loop runs on a dedicated background thread, so the public API
    (:meth:`start`, :meth:`stop`, :meth:`stats`) is synchronous and
    drop-in for the threaded server's: same constructor signature, same
    ``tcp_*`` metrics, same ``stats()`` keys, same ``stop(drain=True)``
    semantics.  See the module docstring for the architecture.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
        metrics: MetricsRegistry | None = None,
        idle_timeout: float | None = DEFAULT_IDLE_TIMEOUT,
        connection_window: int = DEFAULT_CONNECTION_WINDOW,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("need at least one worker")
        if max_message_bytes < 1 or max_message_bytes > MAX_MESSAGE_BYTES:
            raise ConfigurationError(
                f"max_message_bytes must be in [1, {MAX_MESSAGE_BYTES}]"
            )
        if idle_timeout is not None and idle_timeout <= 0:
            raise ConfigurationError("idle_timeout must be positive (or None)")
        if connection_window < 1:
            raise ConfigurationError("connection_window must be at least 1")
        self._registry = registry
        self._max_workers = max_workers
        self._max_message_bytes = max_message_bytes
        self._idle_timeout = idle_timeout
        self._connection_window = connection_window
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._aserver: asyncio.base_events.Server | None = None
        self._thread: threading.Thread | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._stop_event: asyncio.Event | None = None
        self._started = threading.Event()
        self._conns: set[_Connection] = set()
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        #: Requests handed to the executor but not yet picked up by a
        #: handler thread (the dispatch backlog inside the process).
        self._queued = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._connections_accepted = self.metrics.counter(
            "tcp_connections_accepted_total", "Connections accepted."
        )
        self._requests_served = self.metrics.counter(
            "tcp_requests_total", "Requests served (responses flushed count too)."
        )
        self._oversize_drops = self.metrics.counter(
            "tcp_oversize_drops_total",
            "Connections dropped for oversized or length-damaged frames.",
        )
        self._idle_drops = self.metrics.counter(
            "tcp_idle_drops_total",
            "Connections dropped by the idle read timeout (dead peers).",
        )
        self._active_connections = self.metrics.gauge(
            "tcp_active_connections", "Connections currently open."
        )
        self._in_flight_gauge = self.metrics.gauge(
            "tcp_in_flight_requests", "Requests currently being dispatched."
        )
        self._queue_depth = self.metrics.gauge(
            "tcp_queue_depth",
            "Requests waiting for a free handler worker.",
        )
        self._out_of_order = self.metrics.counter(
            "aio_out_of_order_responses_total",
            "Responses written while an earlier request on the same "
            "connection was still in flight (multiplexing at work).",
        )
        self.metrics.gauge(
            "tcp_max_workers", "Size of the handler executor."
        ).set(max_workers)
        self.metrics.gauge(
            "aio_connection_window",
            "Per-connection in-flight request window (backpressure bound).",
        ).set(connection_window)

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    # -- legacy counter views (canonical values live in the registry) ------

    @property
    def connections_accepted(self) -> int:
        return int(self._connections_accepted.value)

    @property
    def requests_served(self) -> int:
        return int(self._requests_served.value)

    @property
    def oversize_drops(self) -> int:
        return int(self._oversize_drops.value)

    @property
    def idle_drops(self) -> int:
        return int(self._idle_drops.value)

    def stats(self) -> dict:
        """Server-side counters for observability.

        Same keys as the threaded server (so existing dashboards and the
        metrics gate keep working) plus ``idle_drops``; the snapshot is
        taken under the mutation lock so it is internally consistent.
        """
        with self._lock:
            return {
                "connections_accepted": int(self._connections_accepted.value),
                "active_connections": len(self._conns),
                "in_flight_requests": self._in_flight,
                "queued_connections": self._queued,
                "requests_served": int(self._requests_served.value),
                "oversize_drops": int(self._oversize_drops.value),
                "idle_drops": int(self._idle_drops.value),
                "max_workers": self._max_workers,
            }

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the event loop (and its accept loop) on a background thread."""
        self._running = True
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="reed-aio"
        )
        self._thread = threading.Thread(
            target=self._run_loop, daemon=True, name="reed-aio-loop"
        )
        self._thread.start()
        self._started.wait(timeout=5.0)

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            loop.run_until_complete(self._serve())
            # Cancel whatever the teardown left running (blocked reads on
            # aborted connections, executor waits) and let it unwind.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            except Exception:
                pass
            loop.close()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        self._aserver = await asyncio.start_server(
            self._handle_connection, sock=self._listener
        )
        self._started.set()
        await self._stop_event.wait()
        # Teardown: close every live connection.  ``close()`` flushes
        # buffered responses (a drained stop already waited for them to
        # be written) before sending FIN.
        writers = [conn.writer for conn in list(self._conns)]
        for writer in writers:
            try:
                writer.close()
            except Exception:
                pass
        if writers:
            await asyncio.wait(
                [asyncio.ensure_future(w.wait_closed()) for w in writers],
                timeout=1.0,
            )

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if not self._running:
            # A connect raced the shutdown; drop it rather than serve a
            # stopped server.
            writer.close()
            return
        sock = writer.get_extra_info("socket")
        if sock is not None:
            tune_socket(sock)
        conn = _Connection(writer, self._connection_window)
        with self._lock:
            self._conns.add(conn)
            self._connections_accepted.inc()
            self._active_connections.set(len(self._conns))
        try:
            await self._read_loop(conn, reader)
        finally:
            # Half-close friendliness: a client that sent its requests
            # and shut down its write side still gets every response.
            if conn.tasks:
                try:
                    await asyncio.wait(list(conn.tasks))
                except asyncio.CancelledError:
                    pass  # loop teardown: bookkeeping below must still run
            with self._lock:
                self._conns.discard(conn)
                self._active_connections.set(len(self._conns))
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_frame_body(self, reader: asyncio.StreamReader, n: int) -> bytes:
        if self._idle_timeout is None:
            return await reader.readexactly(n)
        return await asyncio.wait_for(
            reader.readexactly(n), timeout=self._idle_timeout
        )

    async def _read_loop(
        self, conn: _Connection, reader: asyncio.StreamReader
    ) -> None:
        loop = asyncio.get_running_loop()
        while self._running:
            try:
                header = await self._read_frame_body(reader, 4)
            except asyncio.TimeoutError:
                with self._lock:
                    self._idle_drops.inc()
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return  # disconnect
            length = int.from_bytes(header, "big")
            if length > self._max_message_bytes:
                # Oversized (or length-damaged) frame: drop the
                # connection before attempting the allocation.
                with self._lock:
                    self._oversize_drops.inc()
                return
            try:
                body = await self._read_frame_body(reader, length)
            except asyncio.TimeoutError:
                # Stalled mid-frame: a dead peer, not an idle one, but
                # the same remedy.
                with self._lock:
                    self._idle_drops.inc()
                return
            except (asyncio.IncompleteReadError, ConnectionError, OSError):
                return
            try:
                request = Message.decode(body)
            except Exception:
                return  # framing damage: drop the connection
            # Backpressure: when this connection already has
            # ``connection_window`` requests in flight, stop reading its
            # socket until one completes.
            await conn.window.acquire()
            with self._lock:
                self._in_flight += 1
                self._in_flight_gauge.set(self._in_flight)
            seq = conn.next_seq()
            conn.outstanding.add(seq)
            task = loop.create_task(self._dispatch(conn, request, seq))
            conn.tasks.add(task)
            task.add_done_callback(conn.tasks.discard)

    def _run_handler(self, request: Message) -> Message:
        with self._lock:
            self._queued -= 1
            self._queue_depth.set(self._queued)
        return self._registry.dispatch(request)

    async def _dispatch(self, conn: _Connection, request: Message, seq: int) -> None:
        loop = asyncio.get_running_loop()
        try:
            with self._lock:
                self._queued += 1
                self._queue_depth.set(self._queued)
            try:
                response = await loop.run_in_executor(
                    self._executor, self._run_handler, request
                )
            except RuntimeError:  # executor torn down by a racing stop()
                with self._lock:
                    self._queued -= 1
                    self._queue_depth.set(self._queued)
                return
            encoded = frame(response.encode())
            async with conn.write_lock:
                out_of_order = any(s < seq for s in conn.outstanding)
                with self._lock:
                    # Counted before the flush so the served total is
                    # already visible when the client reads the response.
                    self._requests_served.inc()
                    if out_of_order:
                        self._out_of_order.inc()
                conn.writer.write(encoded)
                await conn.writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass  # peer went away mid-response
        finally:
            conn.outstanding.discard(seq)
            conn.window.release()
            with self._idle:
                self._in_flight -= 1
                self._in_flight_gauge.set(self._in_flight)
                self._idle.notify_all()

    def stop(self, drain: bool = False, timeout: float = 5.0) -> None:
        """Stop the server.

        With ``drain=False`` (the default) every live connection is
        dropped immediately.  With ``drain=True`` the listener closes at
        once but requests already being dispatched get up to ``timeout``
        seconds to finish and flush their responses before connections
        are torn down.
        """
        self._running = False
        loop = self._loop
        if loop is None:
            # Never started: just release the port.
            try:
                self._listener.close()
            except OSError:
                pass
            return
        closed = threading.Event()

        def _close_listener() -> None:
            try:
                if self._aserver is not None:
                    self._aserver.close()
            finally:
                closed.set()

        if not loop.is_closed():
            try:
                loop.call_soon_threadsafe(_close_listener)
                closed.wait(timeout=2.0)
            except RuntimeError:
                pass  # the loop shut down under us
        if drain:
            with self._idle:
                self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)
        if not loop.is_closed() and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:
                pass
        if self._thread is not None:
            self._thread.join(timeout=max(timeout, 5.0))
            self._thread = None
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
        try:
            self._listener.close()
        except OSError:
            pass
