"""TCP transport for the RPC layer.

Two generations of transport live here:

* :class:`TcpServer` — the deployment server, now backed by the asyncio
  event loop in :mod:`repro.net.aio` (single accept loop, one task per
  connection, handlers dispatched concurrently onto a bounded executor,
  responses written out of order as they finish).  Signature, metrics,
  ``stats()`` keys, and ``stop(drain=True)`` semantics are unchanged
  from the threaded generation.
* :class:`TcpConnection` — a **multiplexed** client connection: many
  threads share one persistent socket, each call tagged with a wire
  ``message_id`` and completed out of order by a background reader
  thread.  A bounded in-flight window applies backpressure (senders
  block instead of buffering unboundedly), keepalives detect dead
  peers, and idempotent methods are transparently retried over a fresh
  dial when the persistent connection breaks (a server restart no
  longer fails a pipeline mid-window).
* :class:`ThreadedTcpServer` — the previous thread-per-connection
  server (bounded worker pool, one blocked thread per live client),
  kept as the baseline for ``bench_hotpath``'s ``concurrent_tcp``
  scenario and as a fallback transport.

The wire format is unchanged (4-byte length framing around
:class:`~repro.net.message.Message`, which always carried the
correlation id), so either client generation talks to either server
generation.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace

from repro.net.aio import (
    DEFAULT_CONNECTION_WINDOW,
    DEFAULT_IDLE_TIMEOUT,
    DEFAULT_MAX_WORKERS,
    AsyncTcpServer,
    tune_socket,
)
from repro.net.message import MAX_MESSAGE_BYTES, Message, frame, read_frame
from repro.net.retry import RetryPolicy, is_idempotent_method
from repro.net.rpc import RpcClient, ServiceRegistry
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.util.errors import ConfigurationError, CorruptionError, ProtocolError

#: Default client-side in-flight window: how many calls may be awaiting
#: responses on one multiplexed connection before further senders block.
DEFAULT_CLIENT_WINDOW = 64

#: Snappy reconnect policy for transparent idempotent retries: a server
#: restart is ridden out in ~100 ms of backoff, a hard outage surfaces
#: as ProtocolError after three dials.
DEFAULT_RECONNECT_POLICY = dict(attempts=3, base_delay=0.02, cap=0.25)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    out = bytearray()
    while len(out) < n:
        piece = sock.recv(n - len(out))
        if not piece:
            raise ProtocolError("peer closed the connection mid-frame")
        out.extend(piece)
    return bytes(out)


class TcpServer(AsyncTcpServer):
    """The deployment server: asyncio-multiplexed (see :mod:`repro.net.aio`).

    Drop-in for the threaded generation — same constructor, metrics
    surface, ``stats()`` keys, and drain semantics — but 100+ concurrent
    clients per node stay live on one accept loop plus ``max_workers``
    handler threads, with per-connection request windows, idle-read
    timeouts, and TCP keepalives (``idle_timeout`` /
    ``connection_window``).
    """


class ThreadedTcpServer:
    """The previous generation: thread-per-connection with a bounded pool.

    One worker owns a connection for its lifetime, so at most
    ``max_workers`` clients make progress concurrently and responses on
    a connection always arrive in request order.  Kept as the
    ``bench_hotpath`` ``concurrent_tcp`` baseline (it is exactly the
    architecture whose connection/worker coupling the asyncio server
    removes) and as a conservative fallback transport.

    ``max_message_bytes`` caps inbound frames; an oversized frame drops
    the offending connection rather than attempting the allocation.
    ``stop(drain=True)`` closes the listener immediately but gives
    in-flight requests up to ``timeout`` seconds to flush.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("need at least one worker")
        if max_message_bytes < 1 or max_message_bytes > MAX_MESSAGE_BYTES:
            raise ConfigurationError(
                f"max_message_bytes must be in [1, {MAX_MESSAGE_BYTES}]"
            )
        self._registry = registry
        self._max_workers = max_workers
        self._max_message_bytes = max_message_bytes
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = False
        self._pool: ThreadPoolExecutor | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[socket.socket] = []
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        #: Connections handed to the pool but not yet picked up by a
        #: worker (the accept backlog inside the process).
        self._queued = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._connections_accepted = self.metrics.counter(
            "tcp_connections_accepted_total", "Connections accepted."
        )
        self._requests_served = self.metrics.counter(
            "tcp_requests_total", "Requests served (responses flushed count too)."
        )
        self._oversize_drops = self.metrics.counter(
            "tcp_oversize_drops_total",
            "Connections dropped for oversized or length-damaged frames.",
        )
        self._active_connections = self.metrics.gauge(
            "tcp_active_connections", "Connections currently open."
        )
        self._in_flight_gauge = self.metrics.gauge(
            "tcp_in_flight_requests", "Requests currently being dispatched."
        )
        self._queue_depth = self.metrics.gauge(
            "tcp_queue_depth",
            "Accepted connections waiting for a free worker.",
        )
        self.metrics.gauge(
            "tcp_max_workers", "Size of the connection-serving worker pool."
        ).set(max_workers)

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    # -- legacy counter views (canonical values live in the registry) ------

    @property
    def connections_accepted(self) -> int:
        return int(self._connections_accepted.value)

    @property
    def requests_served(self) -> int:
        return int(self._requests_served.value)

    @property
    def oversize_drops(self) -> int:
        return int(self._oversize_drops.value)

    def stats(self) -> dict:
        """Server-side counters for observability (see :class:`TcpServer`)."""
        with self._lock:
            return {
                "connections_accepted": int(self._connections_accepted.value),
                "active_connections": len(self._connections),
                "in_flight_requests": self._in_flight,
                "queued_connections": self._queued,
                "requests_served": int(self._requests_served.value),
                "oversize_drops": int(self._oversize_drops.value),
                "max_workers": self._max_workers,
            }

    def start(self) -> None:
        """Start accepting connections on a background thread."""
        self._running = True
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="reed-tcp"
        )
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                # A connect raced the shutdown: the kernel completed the
                # handshake between the stop flag and the listener close.
                # Drop it rather than serve a stopped server.
                try:
                    conn.close()
                except OSError:
                    pass
                return
            with self._lock:
                self._connections.append(conn)
                self._connections_accepted.inc()
                self._active_connections.set(len(self._connections))
                self._queued += 1
                self._queue_depth.set(self._queued)
            pool = self._pool
            try:
                if pool is None:
                    raise RuntimeError("server stopped")
                pool.submit(self._serve_connection, conn)
            except RuntimeError:  # a stop() raced the accept
                with self._lock:
                    if conn in self._connections:
                        self._connections.remove(conn)
                    self._active_connections.set(len(self._connections))
                    self._queued -= 1
                    self._queue_depth.set(self._queued)
                try:
                    conn.close()
                except OSError:
                    pass
                return

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            # A worker picked the connection up: it leaves the queue.
            self._queued -= 1
            self._queue_depth.set(self._queued)
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while self._running:
                    try:
                        body = read_frame(
                            lambda n: _recv_exact(conn, n), self._max_message_bytes
                        )
                    except CorruptionError:
                        # Oversized (or length-damaged) frame: drop the
                        # connection before attempting the allocation.
                        with self._lock:
                            self._oversize_drops.inc()
                        return
                    except Exception:
                        return  # disconnect or framing damage
                    with self._lock:
                        self._in_flight += 1
                        self._in_flight_gauge.set(self._in_flight)
                    try:
                        # The response flush counts as in-flight too, so a
                        # draining stop() cannot drop the connection between
                        # dispatch finishing and the reply hitting the wire.
                        response = self._registry.dispatch(Message.decode(body))
                        with self._lock:
                            # Counted before the flush so the served total
                            # is already visible when the client reads the
                            # response.
                            self._requests_served.inc()
                        try:
                            conn.sendall(frame(response.encode()))
                        except OSError:
                            return
                    finally:
                        with self._lock:
                            self._in_flight -= 1
                            self._in_flight_gauge.set(self._in_flight)
                            self._idle.notify_all()
        finally:
            with self._lock:
                try:
                    self._connections.remove(conn)
                except ValueError:
                    pass
                self._active_connections.set(len(self._connections))

    def stop(self, drain: bool = False, timeout: float = 5.0) -> None:
        """Stop the server (``drain=True`` flushes in-flight responses)."""
        self._running = False
        try:
            # shutdown() before close(): a bare close() does not release
            # the listening port while the accept thread is blocked in
            # accept() on it, so new connects could still succeed.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if drain:
            with self._idle:
                self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class _Waiter:
    """One in-flight call's completion slot."""

    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: Message | None = None
        self.error: BaseException | None = None

    def resolve(self, response: Message) -> None:
        self.response = response
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class TcpConnection:
    """A multiplexed client connection; thread-safe with true concurrency.

    Many threads share the one persistent socket: each call is assigned
    a wire-level ``message_id``, sent under a short write lock, and then
    the caller blocks on its own completion slot while a background
    reader thread matches inbound responses back to callers by id —
    responses complete **out of order**, so a slow batch call no longer
    serializes the fast calls behind it.

    Flow control and fault handling:

    * at most ``max_in_flight`` calls may be outstanding; further
      senders block (bounded window backpressure) rather than buffering
      unboundedly, and give up with :class:`ProtocolError` after
      ``timeout`` seconds;
    * ``timeout`` also bounds each call's wait for its response; a
      timed-out id is simply abandoned (a late response is discarded by
      id — the stream stays consistent, unlike the old one-in-flight
      client where a timeout poisoned the framing);
    * TCP keepalives detect peers that vanished without a FIN;
    * when the connection breaks, every pending call fails, and the
      next call transparently re-dials; **idempotent** methods
      (:func:`repro.net.retry.is_idempotent_method`) that failed
      mid-flight are retried over the fresh connection under
      ``retry_policy``, so a server restart does not fail a read
      pipeline mid-window.  Non-idempotent methods still raise.

    The constructor's first four parameters match the old signature, so
    every existing call site (``TcpCluster``, the ``reed`` CLI, the
    examples) runs unmodified.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        metrics: MetricsRegistry | None = None,
        *,
        max_in_flight: int = DEFAULT_CLIENT_WINDOW,
        auto_retry: bool = True,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if max_in_flight < 1:
            raise ConfigurationError("max_in_flight must be at least 1")
        self._host = host
        self._port = port
        self._timeout = timeout
        self._metrics = metrics
        self._auto_retry = auto_retry
        self._retry_policy = retry_policy or RetryPolicy(**DEFAULT_RECONNECT_POLICY)
        self._lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._window = threading.BoundedSemaphore(max_in_flight)
        self._pending: dict[int, _Waiter] = {}
        self._next_wire_id = 0
        self._generation = 0
        self._closed = False
        self._broken: BaseException | None = None
        self._reader: threading.Thread | None = None
        registry = metrics if metrics is not None else default_registry()
        self._reconnects = registry.counter(
            "tcp_client_reconnects_total",
            "Persistent connections re-dialed after a break.",
        )
        self._retries = registry.counter(
            "tcp_client_idempotent_retries_total",
            "Idempotent calls transparently retried over a fresh dial.",
        )
        self._in_flight_gauge = registry.gauge(
            "tcp_client_in_flight_requests",
            "Client calls currently awaiting a response (all connections).",
        )
        self._sock: socket.socket | None = None
        try:
            self._sock = self._dial()
        except OSError as exc:
            # A replicated deployment must be able to build clients while
            # one node is down: defer the dial, and let the first call
            # surface the failure (or succeed once the node is back).
            self._broken = exc

    # -- connection lifecycle ---------------------------------------------

    def _dial(self) -> socket.socket:
        sock = socket.create_connection((self._host, self._port), self._timeout)
        sock.settimeout(None)  # the reader blocks; call waits carry the timeout
        tune_socket(sock)
        return sock

    def _ensure_reader_locked(self) -> None:
        if self._reader is None or not self._reader.is_alive():
            self._reader = threading.Thread(
                target=self._reader_loop,
                args=(self._sock, self._generation),
                daemon=True,
                name=f"reed-mux-reader-{self._host}:{self._port}",
            )
            self._reader.start()

    def _reader_loop(self, sock: socket.socket, generation: int) -> None:
        try:
            while True:
                body = read_frame(lambda n: _recv_exact(sock, n))
                response = Message.decode(body)
                with self._lock:
                    waiter = self._pending.pop(response.message_id, None)
                # Unknown ids are discarded: they belong to calls that
                # already timed out and were abandoned.
                if waiter is not None:
                    waiter.resolve(response)
        except Exception as exc:
            self._break_connection(exc, generation)

    def _break_connection(self, cause: BaseException, generation: int) -> None:
        with self._lock:
            if generation != self._generation:
                return  # a stale reader observing its own replaced socket
            self._broken = cause
            pending = list(self._pending.values())
            self._pending.clear()
        error = ProtocolError(
            f"connection to {self._host}:{self._port} lost: {cause}"
        )
        for waiter in pending:
            waiter.fail(error)

    @staticmethod
    def _hard_close(sock: socket.socket) -> None:
        """Shutdown then close: a bare ``close()`` while the reader
        thread is blocked in ``recv`` never reaches the kernel socket
        (the in-progress syscall pins it), so no FIN is sent and the
        server would hold the connection forever.  ``shutdown`` sends
        the FIN and wakes the reader immediately."""
        try:
            sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            sock.close()
        except OSError:
            pass

    def _redial_locked(self) -> None:
        """Replace a broken socket (caller holds ``self._lock``)."""
        if self._sock is not None:
            self._hard_close(self._sock)
        self._sock = self._dial()  # raises OSError while the server is down
        self._generation += 1
        self._broken = None
        self._reconnects.inc()
        self._reader = None  # the old reader is stale; start a fresh one
        self._ensure_reader_locked()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._generation += 1  # invalidate the reader's break report
            pending = list(self._pending.values())
            self._pending.clear()
        error = ProtocolError(
            f"connection to {self._host}:{self._port} closed"
        )
        for waiter in pending:
            waiter.fail(error)
        if self._sock is not None:
            self._hard_close(self._sock)

    # -- the send path -----------------------------------------------------

    def _send_once(self, request: Message) -> Message:
        if not self._window.acquire(timeout=self._timeout):
            raise ProtocolError(
                f"in-flight window stalled for {self._timeout}s "
                f"(peer {self._host}:{self._port} not draining responses)"
            )
        self._in_flight_gauge.inc()
        try:
            with self._lock:
                if self._closed:
                    raise ProtocolError(
                        f"connection to {self._host}:{self._port} closed"
                    )
                if self._broken is not None:
                    # The link died since the last call; any method may
                    # safely go out over a fresh dial because this
                    # request was never sent.
                    self._redial_locked()
                self._ensure_reader_locked()
                self._next_wire_id += 1
                wire_id = self._next_wire_id
                waiter = _Waiter()
                self._pending[wire_id] = waiter
                sock = self._sock
            encoded = frame(replace(request, message_id=wire_id).encode())
            try:
                with self._send_lock:
                    sock.sendall(encoded)
            except OSError as exc:
                with self._lock:
                    self._pending.pop(wire_id, None)
                raise ProtocolError(
                    f"send to {self._host}:{self._port} failed: {exc}"
                ) from exc
            if not waiter.event.wait(timeout=self._timeout):
                with self._lock:
                    self._pending.pop(wire_id, None)
                raise ProtocolError(
                    f"no response for {request.method!r} from "
                    f"{self._host}:{self._port} within {self._timeout}s"
                )
            if waiter.error is not None:
                raise waiter.error
            assert waiter.response is not None
            # Restore the caller's correlation id: the wire id belongs
            # to this connection, not to the RpcClient that sent it.
            return replace(waiter.response, message_id=request.message_id)
        finally:
            self._in_flight_gauge.dec()
            self._window.release()

    def _send(self, request: Message) -> Message:
        if self._auto_retry and is_idempotent_method(request.method):
            attempt = [0]

            def operation() -> Message:
                attempt[0] += 1
                if attempt[0] > 1:
                    self._retries.inc()
                return self._send_once(request)

            return self._retry_policy.run(operation)
        return self._send_once(request)

    def client(self) -> RpcClient:
        """An :class:`RpcClient` over this connection.

        Clients are cheap; many of them (on many threads) may share one
        connection and their calls interleave on the wire.
        """
        return RpcClient(self._send, metrics=self._metrics)

    def stats(self) -> dict:
        """Connection-level counters for observability."""
        with self._lock:
            return {
                "in_flight": len(self._pending),
                "reconnects": int(self._reconnects.value),
                "idempotent_retries": int(self._retries.value),
                "broken": self._broken is not None,
                "closed": self._closed,
            }


def connect(
    host: str,
    port: int,
    timeout: float = 30.0,
    metrics: MetricsRegistry | None = None,
) -> RpcClient:
    """Convenience: open a connection and return its RPC client."""
    return TcpConnection(host, port, timeout, metrics=metrics).client()


__all__ = [
    "DEFAULT_CLIENT_WINDOW",
    "DEFAULT_CONNECTION_WINDOW",
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_MAX_WORKERS",
    "TcpConnection",
    "TcpServer",
    "ThreadedTcpServer",
    "connect",
]
