"""TCP transport for the RPC layer.

A concurrent server (bounded worker pool, one worker per live
connection) and a blocking client connection, with 4-byte length framing
from :mod:`repro.net.message`.  This is the deployment transport: the
examples run a full REED cluster (data-store servers, key-store server,
key manager) over localhost sockets, and the batched upload protocol
relies on many clients issuing large batch calls without serializing
behind each other.
"""

from __future__ import annotations

import socket
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.net.message import MAX_MESSAGE_BYTES, Message, frame, read_frame
from repro.net.rpc import RpcClient, ServiceRegistry
from repro.obs.metrics import MetricsRegistry
from repro.util.errors import ConfigurationError, CorruptionError, ProtocolError

#: Default size of a server's connection-serving worker pool.  Each live
#: connection occupies one worker while it is being served, so this is
#: the number of clients that make progress concurrently; further
#: connections queue until a worker frees up.
DEFAULT_MAX_WORKERS = 16


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    out = bytearray()
    while len(out) < n:
        piece = sock.recv(n - len(out))
        if not piece:
            raise ProtocolError("peer closed the connection mid-frame")
        out.extend(piece)
    return bytes(out)


class TcpServer:
    """Serves a :class:`ServiceRegistry` on a listening socket.

    Connections are dispatched onto a bounded :class:`ThreadPoolExecutor`
    (``max_workers``), so batch calls from many clients run concurrently
    without unbounded thread growth.  Per-connection framing is
    preserved: one worker owns a connection for its lifetime, so
    responses on a connection always arrive in request order.

    ``max_message_bytes`` caps inbound frames (never above the global
    :data:`~repro.net.message.MAX_MESSAGE_BYTES` sanity bound); an
    oversized frame drops the offending connection rather than
    attempting the allocation.

    ``stop(drain=True)`` performs a graceful shutdown: the listener
    closes immediately, but in-flight requests get up to ``timeout``
    seconds to complete before connections are torn down.
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_message_bytes: int = MAX_MESSAGE_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_workers < 1:
            raise ConfigurationError("need at least one worker")
        if max_message_bytes < 1 or max_message_bytes > MAX_MESSAGE_BYTES:
            raise ConfigurationError(
                f"max_message_bytes must be in [1, {MAX_MESSAGE_BYTES}]"
            )
        self._registry = registry
        self._max_workers = max_workers
        self._max_message_bytes = max_message_bytes
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self._running = False
        self._pool: ThreadPoolExecutor | None = None
        self._accept_thread: threading.Thread | None = None
        self._connections: list[socket.socket] = []
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._in_flight = 0
        #: Connections handed to the pool but not yet picked up by a
        #: worker (the accept backlog inside the process).
        self._queued = 0
        # The registry is per-server by default so the legacy attribute
        # views below (``connections_accepted`` etc.) stay exact per
        # instance; a TcpCluster injects each node's scrape registry.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._connections_accepted = self.metrics.counter(
            "tcp_connections_accepted_total", "Connections accepted."
        )
        self._requests_served = self.metrics.counter(
            "tcp_requests_total", "Requests served (responses flushed count too)."
        )
        self._oversize_drops = self.metrics.counter(
            "tcp_oversize_drops_total",
            "Connections dropped for oversized or length-damaged frames.",
        )
        self._active_connections = self.metrics.gauge(
            "tcp_active_connections", "Connections currently open."
        )
        self._in_flight_gauge = self.metrics.gauge(
            "tcp_in_flight_requests", "Requests currently being dispatched."
        )
        self._queue_depth = self.metrics.gauge(
            "tcp_queue_depth",
            "Accepted connections waiting for a free worker.",
        )
        self.metrics.gauge(
            "tcp_max_workers", "Size of the connection-serving worker pool."
        ).set(max_workers)

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    # -- legacy counter views (canonical values live in the registry) ------

    @property
    def connections_accepted(self) -> int:
        return int(self._connections_accepted.value)

    @property
    def requests_served(self) -> int:
        return int(self._requests_served.value)

    @property
    def oversize_drops(self) -> int:
        return int(self._oversize_drops.value)

    def stats(self) -> dict:
        """Server-side counters for observability.

        The whole snapshot is taken under the server's own mutation lock
        — every counter bump in the serve path happens while holding it
        — so the dict is internally consistent even mid-drain (a served
        total can never run ahead of the in-flight count it implies).

        .. deprecated:: prefer scraping :attr:`metrics`; this dict is a
           stable view kept for existing callers.
        """
        with self._lock:
            return {
                "connections_accepted": int(self._connections_accepted.value),
                "active_connections": len(self._connections),
                "in_flight_requests": self._in_flight,
                "queued_connections": self._queued,
                "requests_served": int(self._requests_served.value),
                "oversize_drops": int(self._oversize_drops.value),
                "max_workers": self._max_workers,
            }

    def start(self) -> None:
        """Start accepting connections on a background thread."""
        self._running = True
        self._pool = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="reed-tcp"
        )
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                # A connect raced the shutdown: the kernel completed the
                # handshake between the stop flag and the listener close.
                # Drop it rather than serve a stopped server.
                try:
                    conn.close()
                except OSError:
                    pass
                return
            with self._lock:
                self._connections.append(conn)
                self._connections_accepted.inc()
                self._active_connections.set(len(self._connections))
                self._queued += 1
                self._queue_depth.set(self._queued)
            pool = self._pool
            try:
                if pool is None:
                    raise RuntimeError("server stopped")
                pool.submit(self._serve_connection, conn)
            except RuntimeError:  # a stop() raced the accept
                with self._lock:
                    if conn in self._connections:
                        self._connections.remove(conn)
                    self._active_connections.set(len(self._connections))
                    self._queued -= 1
                    self._queue_depth.set(self._queued)
                try:
                    conn.close()
                except OSError:
                    pass
                return

    def _serve_connection(self, conn: socket.socket) -> None:
        with self._lock:
            # A worker picked the connection up: it leaves the queue.
            self._queued -= 1
            self._queue_depth.set(self._queued)
        try:
            with conn:
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                while self._running:
                    try:
                        body = read_frame(
                            lambda n: _recv_exact(conn, n), self._max_message_bytes
                        )
                    except CorruptionError:
                        # Oversized (or length-damaged) frame: drop the
                        # connection before attempting the allocation.
                        with self._lock:
                            self._oversize_drops.inc()
                        return
                    except Exception:
                        return  # disconnect or framing damage
                    with self._lock:
                        self._in_flight += 1
                        self._in_flight_gauge.set(self._in_flight)
                    try:
                        # The response flush counts as in-flight too, so a
                        # draining stop() cannot drop the connection between
                        # dispatch finishing and the reply hitting the wire.
                        response = self._registry.dispatch(Message.decode(body))
                        with self._lock:
                            # Counted before the flush so the served total
                            # is already visible when the client reads the
                            # response.
                            self._requests_served.inc()
                        try:
                            conn.sendall(frame(response.encode()))
                        except OSError:
                            return
                    finally:
                        with self._lock:
                            self._in_flight -= 1
                            self._in_flight_gauge.set(self._in_flight)
                            self._idle.notify_all()
        finally:
            with self._lock:
                try:
                    self._connections.remove(conn)
                except ValueError:
                    pass
                self._active_connections.set(len(self._connections))

    def stop(self, drain: bool = False, timeout: float = 5.0) -> None:
        """Stop the server.

        With ``drain=False`` (the default, and the historical behaviour)
        every live connection is dropped immediately.  With
        ``drain=True`` the listener closes at once but requests already
        being dispatched get up to ``timeout`` seconds to finish and
        flush their responses before connections are torn down.
        """
        self._running = False
        try:
            # shutdown() before close(): a bare close() does not release
            # the listening port while the accept thread is blocked in
            # accept() on it, so new connects could still succeed.
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        if drain:
            with self._idle:
                self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout)
        with self._lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


class TcpConnection:
    """A client connection; thread-safe (one in-flight call at a time)."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()
        self._metrics = metrics

    def client(self) -> RpcClient:
        def send(request: Message) -> Message:
            with self._lock:
                self._sock.sendall(frame(request.encode()))
                body = read_frame(lambda n: _recv_exact(self._sock, n))
            return Message.decode(body)

        return RpcClient(send, metrics=self._metrics)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def connect(
    host: str,
    port: int,
    timeout: float = 30.0,
    metrics: MetricsRegistry | None = None,
) -> RpcClient:
    """Convenience: open a connection and return its RPC client."""
    return TcpConnection(host, port, timeout, metrics=metrics).client()
