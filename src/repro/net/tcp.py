"""TCP transport for the RPC layer.

A thread-per-connection server and a blocking client connection, with
4-byte length framing from :mod:`repro.net.message`.  This is the
deployment transport: the examples run a full REED cluster (data-store
servers, key-store server, key manager) over localhost sockets.
"""

from __future__ import annotations

import socket
import threading

from repro.net.message import Message, frame, read_frame
from repro.net.rpc import RpcClient, ServiceRegistry
from repro.util.errors import ProtocolError


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    out = bytearray()
    while len(out) < n:
        piece = sock.recv(n - len(out))
        if not piece:
            raise ProtocolError("peer closed the connection mid-frame")
        out.extend(piece)
    return bytes(out)


class TcpServer:
    """Serves a :class:`ServiceRegistry` on a listening socket."""

    def __init__(self, registry: ServiceRegistry, host: str = "127.0.0.1", port: int = 0) -> None:
        self._registry = registry
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self._running = False
        self._threads: list[threading.Thread] = []
        self._accept_thread: threading.Thread | None = None
        self._connections: list[socket.socket] = []
        self._conn_lock = threading.Lock()

    @property
    def address(self) -> tuple[str, int]:
        return self._listener.getsockname()

    def start(self) -> None:
        """Start accepting connections on a background thread."""
        self._running = True
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while self._running:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            if not self._running:
                # A connect raced the shutdown: the kernel completed the
                # handshake between the stop flag and the listener close.
                # Drop it rather than serve a stopped server.
                try:
                    conn.close()
                except OSError:
                    pass
                return
            with self._conn_lock:
                self._connections.append(conn)
            thread = threading.Thread(
                target=self._serve_connection, args=(conn,), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    body = read_frame(lambda n: _recv_exact(conn, n))
                except Exception:
                    return  # disconnect or framing damage: drop the connection
                response = self._registry.dispatch(Message.decode(body))
                try:
                    conn.sendall(frame(response.encode()))
                except OSError:
                    return

    def stop(self) -> None:
        """Stop accepting and drop every live connection."""
        self._running = False
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            connections = list(self._connections)
            self._connections.clear()
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class TcpConnection:
    """A client connection; thread-safe (one in-flight call at a time)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._lock = threading.Lock()

    def client(self) -> RpcClient:
        def send(request: Message) -> Message:
            with self._lock:
                self._sock.sendall(frame(request.encode()))
                body = read_frame(lambda n: _recv_exact(self._sock, n))
            return Message.decode(body)

        return RpcClient(send)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass


def connect(host: str, port: int, timeout: float = 30.0) -> RpcClient:
    """Convenience: open a connection and return its RPC client."""
    return TcpConnection(host, port, timeout).client()
