"""Networking: message framing, RPC, loopback and TCP transports."""

from repro.net.aio import AsyncTcpServer
from repro.net.message import MAX_MESSAGE_BYTES, Message, frame, read_frame
from repro.net.retry import (
    IDEMPOTENT_METHOD_SUFFIXES,
    RetryingRpcClient,
    RetryPolicy,
    is_idempotent_method,
)
from repro.net.rpc import (
    LoopbackTransport,
    RpcClient,
    ServiceRegistry,
    decode_error,
    encode_error,
)
from repro.net.tcp import TcpConnection, TcpServer, ThreadedTcpServer, connect

__all__ = [
    "AsyncTcpServer",
    "IDEMPOTENT_METHOD_SUFFIXES",
    "LoopbackTransport",
    "MAX_MESSAGE_BYTES",
    "Message",
    "RetryPolicy",
    "RetryingRpcClient",
    "RpcClient",
    "ServiceRegistry",
    "TcpConnection",
    "TcpServer",
    "ThreadedTcpServer",
    "connect",
    "decode_error",
    "encode_error",
    "frame",
    "is_idempotent_method",
    "read_frame",
]
