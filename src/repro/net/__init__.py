"""Networking: message framing, RPC, loopback and TCP transports."""

from repro.net.message import MAX_MESSAGE_BYTES, Message, frame, read_frame
from repro.net.retry import RetryingRpcClient, RetryPolicy
from repro.net.rpc import (
    LoopbackTransport,
    RpcClient,
    ServiceRegistry,
    decode_error,
    encode_error,
)
from repro.net.tcp import TcpConnection, TcpServer, connect

__all__ = [
    "LoopbackTransport",
    "MAX_MESSAGE_BYTES",
    "Message",
    "RetryPolicy",
    "RetryingRpcClient",
    "RpcClient",
    "ServiceRegistry",
    "TcpConnection",
    "TcpServer",
    "connect",
    "decode_error",
    "encode_error",
    "frame",
    "read_frame",
]
