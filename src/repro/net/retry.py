"""Retry policy for RPC calls.

Transient faults — a dropped TCP connection, a server restarting, a
timeout — surface as :class:`ProtocolError`/:class:`OSError` from the
transport.  Idempotent REED operations (every storage/key-state method
is idempotent: puts overwrite deterministically, gets are reads) can
simply be retried.

:class:`RetryPolicy` implements capped exponential backoff; ``wrap``
produces a drop-in replacement for an :class:`RpcClient` whose ``call``
retries through transient failures and optionally re-establishes the
connection between attempts.  Library errors that represent *semantic*
failures (NotFound, AccessDenied, Integrity, RateLimit — which has its
own backoff protocol) are never retried here.
"""

from __future__ import annotations

import random
import time
from collections.abc import Callable

from repro.net.rpc import RpcClient
from repro.util.errors import ConfigurationError, ProtocolError, ReproError

#: Exception types considered transient (safe to retry).
TRANSIENT_ERRORS: tuple[type[BaseException], ...] = (ProtocolError, OSError)

#: Wire-method name suffixes (the part after the service prefix, e.g.
#: ``storage.has_many`` → ``has_many``) that are safe to retry blind on a
#: broken connection: pure reads plus side-effect-free info calls.  The
#: deliberately-excluded deterministic writes (``put_many`` overwrites
#: identically) would also be safe data-wise, but retrying them skews
#: dedup/rate-limit accounting, so the transport only auto-retries these.
IDEMPOTENT_METHOD_SUFFIXES: frozenset[str] = frozenset(
    {
        "exists",
        "exists_batch",
        "has_many",
        "get",
        "get_many",
        "recipe_get",
        "recipe_get_many",
        "recipe_list",
        "stub_get",
        "stub_get_many",
        "chunk_list",
        "refcounts",
        "stub_list",
        "list",
        "public_key",
        "backoff_hint",
        "info",
        "metrics",
    }
)


def is_idempotent_method(method: str) -> bool:
    """True when ``method`` may be transparently retried after a
    reconnect (see :data:`IDEMPOTENT_METHOD_SUFFIXES`)."""
    return method.rsplit(".", 1)[-1] in IDEMPOTENT_METHOD_SUFFIXES


class RetryPolicy:
    """Capped exponential backoff: ``base * 2^attempt``, up to ``cap``.

    ``jitter`` spreads the capped delay uniformly over
    ``[delay * (1 - jitter), delay]`` so a fleet of clients retrying the
    same outage does not stampede the server in lockstep.  The jitter
    source is injectable (``rng``) so tests can seed it and assert the
    exact delay sequence.
    """

    def __init__(
        self,
        attempts: int = 4,
        base_delay: float = 0.05,
        cap: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if attempts < 1:
            raise ConfigurationError("need at least one attempt")
        if base_delay < 0 or cap < 0:
            raise ConfigurationError("delays must be non-negative")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigurationError("jitter must be a fraction in [0, 1]")
        self.attempts = attempts
        self.base_delay = base_delay
        self.cap = cap
        self.jitter = jitter
        self._rng = rng or random.Random()
        self._sleep = sleep

    def delay(self, attempt: int) -> float:
        delay = min(self.cap, self.base_delay * (2**attempt))
        if self.jitter:
            delay *= 1.0 - self.jitter * self._rng.random()
        return delay

    def run(self, operation: Callable[[], bytes]) -> bytes:
        """Run ``operation``, retrying transient failures."""
        last: BaseException | None = None
        for attempt in range(self.attempts):
            try:
                return operation()
            except TRANSIENT_ERRORS as exc:
                last = exc
                if attempt + 1 < self.attempts:
                    self._sleep(self.delay(attempt))
            except ReproError:
                raise  # semantic failure: never retry
        raise ProtocolError(
            f"operation failed after {self.attempts} attempts: {last}"
        ) from last


class RetryingRpcClient:
    """An RpcClient wrapper that retries transient transport failures.

    ``reconnect`` (optional) is called between attempts to obtain a
    fresh underlying client — e.g. re-dialing a TCP connection after the
    server came back.  With ``idempotent_only=True`` only methods that
    pass :func:`is_idempotent_method` are retried; anything else gets
    exactly one attempt (a broken persistent connection then surfaces as
    the original transport error instead of a blind re-send).
    """

    def __init__(
        self,
        client: RpcClient,
        policy: RetryPolicy | None = None,
        reconnect: Callable[[], RpcClient] | None = None,
        idempotent_only: bool = False,
    ) -> None:
        self._client = client
        self._policy = policy or RetryPolicy()
        self._reconnect = reconnect
        self._idempotent_only = idempotent_only

    def call(self, method: str, payload: bytes = b"") -> bytes:
        if self._idempotent_only and not is_idempotent_method(method):
            return self._client.call(method, payload)
        first = [True]

        def attempt() -> bytes:
            if not first[0] and self._reconnect is not None:
                self._client = self._reconnect()
            first[0] = False
            return self._client.call(method, payload)

        return self._policy.run(attempt)
