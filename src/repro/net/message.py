"""RPC message framing.

Every request/response is a :class:`Message`: a correlation id, a method
name, a success/error flag, and an opaque payload encoded by the service
layer.  On byte streams (TCP) messages are framed with a 4-byte
big-endian length prefix.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.codec import Decoder, Encoder
from repro.util.errors import CorruptionError, ProtocolError

#: Upper bound on a single message body (64 MiB) — a sanity limit that
#: turns a corrupted length prefix into a clean error instead of an
#: attempted multi-gigabyte allocation.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024


@dataclass(frozen=True)
class Message:
    """One framed RPC message.

    ``trace_id``/``parent_span_id`` carry distributed-tracing context
    (see :mod:`repro.obs.propagate`).  They are encoded as *optional
    trailing fields*: an untraced message (both empty — every response,
    and every request from an uninstrumented caller) encodes to exactly
    the original four-field wire format, and the decoder accepts such
    old-format frames unchanged — peers that predate tracing interoperate
    with peers that carry it.
    """

    message_id: int
    method: str
    is_error: bool
    payload: bytes
    trace_id: str = ""
    parent_span_id: str = ""

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .uint(self.message_id)
            .text(self.method)
            .boolean(self.is_error)
            .blob(self.payload)
        )
        if self.trace_id or self.parent_span_id:
            enc.text(self.trace_id).text(self.parent_span_id)
        return enc.done()

    @classmethod
    def decode(cls, data: bytes) -> "Message":
        dec = Decoder(data)
        message_id = dec.uint()
        method = dec.text()
        is_error = dec.boolean()
        payload = dec.blob()
        # Optional trailing trace context: absent on old-format frames.
        trace_id = dec.text() if dec.remaining else ""
        parent_span_id = dec.text() if dec.remaining else ""
        dec.expect_end()
        return cls(
            message_id=message_id,
            method=method,
            is_error=is_error,
            payload=payload,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
        )


def frame(data: bytes) -> bytes:
    """Length-prefix a message body for stream transports."""
    if len(data) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(data)} bytes exceeds the frame limit")
    return len(data).to_bytes(4, "big") + data


def read_frame(recv_exact, max_bytes: int = MAX_MESSAGE_BYTES) -> bytes:
    """Read one frame using ``recv_exact(n) -> bytes`` (raises on EOF).

    ``max_bytes`` lets a server enforce a tighter per-deployment limit
    than the global sanity bound (e.g. a public-facing endpoint that
    only ever expects small control messages).
    """
    header = recv_exact(4)
    length = int.from_bytes(header, "big")
    if length > max_bytes:
        raise CorruptionError(f"frame length {length} exceeds the limit")
    return recv_exact(length)
