"""A small synchronous RPC layer.

A :class:`ServiceRegistry` maps method names to handlers (payload bytes
in, payload bytes out).  Library exceptions raised by handlers are
serialized by class name and re-raised as the *same class* on the
client, so e.g. a :class:`RateLimitExceeded` from the key manager
travels through TCP intact and the client's back-off logic does not care
whether the key manager is local or remote.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from repro.net.message import Message
from repro.util import errors
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ProtocolError, ReproError

Handler = Callable[[bytes], bytes]

#: Exception classes allowed to cross the wire by name.
_WIRE_ERRORS: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        errors.ReproError,
        errors.ConfigurationError,
        errors.IntegrityError,
        errors.CorruptionError,
        errors.AccessDeniedError,
        errors.KeyManagerError,
        errors.RateLimitExceeded,
        errors.StorageError,
        errors.NotFoundError,
        errors.ProtocolError,
    )
}


def encode_error(exc: Exception) -> bytes:
    name = type(exc).__name__ if type(exc).__name__ in _WIRE_ERRORS else "ReproError"
    return Encoder().text(name).text(str(exc)).done()


def decode_error(payload: bytes) -> ReproError:
    dec = Decoder(payload)
    name = dec.text()
    message = dec.text()
    dec.expect_end()
    return _WIRE_ERRORS.get(name, ReproError)(message)


class ServiceRegistry:
    """Method-name → handler dispatch table shared by all transports."""

    def __init__(self) -> None:
        self._handlers: dict[str, Handler] = {}

    def register(self, method: str, handler: Handler) -> None:
        if method in self._handlers:
            raise ProtocolError(f"method {method!r} registered twice")
        self._handlers[method] = handler

    def methods(self) -> list[str]:
        return sorted(self._handlers)

    def dispatch(self, request: Message) -> Message:
        """Run a handler, converting exceptions into error replies."""
        handler = self._handlers.get(request.method)
        if handler is None:
            return Message(
                message_id=request.message_id,
                method=request.method,
                is_error=True,
                payload=encode_error(ProtocolError(f"unknown method {request.method!r}")),
            )
        try:
            payload = handler(request.payload)
        except Exception as exc:  # noqa: BLE001 - faults must cross the wire
            return Message(
                message_id=request.message_id,
                method=request.method,
                is_error=True,
                payload=encode_error(exc),
            )
        return Message(
            message_id=request.message_id,
            method=request.method,
            is_error=False,
            payload=payload,
        )


class RpcClient:
    """Client over any transport that can round-trip a :class:`Message`.

    ``send`` is a callable mapping a request Message to a response
    Message; transports provide it (direct dispatch for in-memory, framed
    sockets for TCP).
    """

    def __init__(self, send: Callable[[Message], Message]) -> None:
        self._send = send
        self._next_id = 0
        self._lock = threading.Lock()
        #: Round trips issued through this client.
        self.calls = 0
        #: Calls that came back as (decoded) error replies.
        self.errors = 0

    def call(self, method: str, payload: bytes = b"") -> bytes:
        with self._lock:
            self._next_id += 1
            message_id = self._next_id
        request = Message(
            message_id=message_id, method=method, is_error=False, payload=payload
        )
        self.calls += 1
        response = self._send(request)
        if response.message_id != message_id:
            raise ProtocolError(
                f"response id {response.message_id} does not match request {message_id}"
            )
        if response.is_error:
            self.errors += 1
            raise decode_error(response.payload)
        return response.payload

    def stats(self) -> dict:
        """Round-trip counters for observability."""
        return {"calls": self.calls, "errors": self.errors}


class LoopbackTransport:
    """Zero-copy in-process transport: dispatch straight into a registry.

    An optional ``on_message(request_bytes, response_bytes)`` hook lets
    the simulation layer account for the bytes that *would* have crossed
    the network.  ``messages`` counts dispatches always; the byte
    counters are maintained only when a hook forces encoding anyway (the
    zero-copy fast path never serializes).
    """

    def __init__(self, registry: ServiceRegistry, on_message=None) -> None:
        self._registry = registry
        self._on_message = on_message
        #: Messages dispatched through this transport (all clients).
        self.messages = 0
        #: Encoded request/response bytes (only counted when encoding
        #: happens, i.e. an ``on_message`` hook is installed).
        self.request_bytes = 0
        self.response_bytes = 0

    def client(self) -> RpcClient:
        def send(request: Message) -> Message:
            response = self._registry.dispatch(request)
            self.messages += 1
            if self._on_message is not None:
                request_encoded = request.encode()
                response_encoded = response.encode()
                self.request_bytes += len(request_encoded)
                self.response_bytes += len(response_encoded)
                self._on_message(request_encoded, response_encoded)
            return response

        return RpcClient(send)

    def stats(self) -> dict:
        """Transport-level counters for observability."""
        return {
            "messages": self.messages,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
        }
