"""A small synchronous RPC layer.

A :class:`ServiceRegistry` maps method names to handlers (payload bytes
in, payload bytes out).  Library exceptions raised by handlers are
serialized by class name and re-raised as the *same class* on the
client, so e.g. a :class:`RateLimitExceeded` from the key manager
travels through TCP intact and the client's back-off logic does not care
whether the key manager is local or remote.

Both ends are instrumented through :mod:`repro.obs`: the registry
records server-side ``rpc_requests_total`` / ``rpc_handler_seconds`` per
method, and every :class:`RpcClient` records per-method latency and
payload bytes.  Registries are injectable so each node of a
:class:`~repro.core.cluster.TcpCluster` exposes its own series; the
process default registry is used otherwise.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable

from contextlib import nullcontext

from repro.net.message import Message
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.tracing import Tracer, current_trace_context, default_tracer
from repro.util import errors
from repro.util.codec import Decoder, Encoder
from repro.util.errors import ProtocolError, ReproError

Handler = Callable[[bytes], bytes]

#: Exception classes allowed to cross the wire by name.
_WIRE_ERRORS: dict[str, type[ReproError]] = {
    cls.__name__: cls
    for cls in (
        errors.ReproError,
        errors.ConfigurationError,
        errors.IntegrityError,
        errors.CorruptionError,
        errors.AccessDeniedError,
        errors.KeyManagerError,
        errors.RateLimitExceeded,
        errors.StorageError,
        errors.NotFoundError,
        errors.ProtocolError,
    )
}


def encode_error(exc: Exception) -> bytes:
    name = type(exc).__name__ if type(exc).__name__ in _WIRE_ERRORS else "ReproError"
    return Encoder().text(name).text(str(exc)).done()


def decode_error(payload: bytes) -> ReproError:
    dec = Decoder(payload)
    name = dec.text()
    message = dec.text()
    dec.expect_end()
    return _WIRE_ERRORS.get(name, ReproError)(message)


class ServiceRegistry:
    """Method-name → handler dispatch table shared by all transports.

    Dispatch is metered: every request bumps
    ``rpc_requests_total{method=...}`` and records handler wall time in
    ``rpc_handler_seconds{method=...}`` on ``metrics`` (the process
    default registry unless a per-node registry is injected).  ``clock``
    is injectable for deterministic tests.
    """

    def __init__(
        self,
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
        tracer: Tracer | None = None,
    ) -> None:
        self._handlers: dict[str, Handler] = {}
        self._clock = clock
        #: Handler spans for propagated trace contexts land here; a
        #: cluster injects the node's tracer so the span carries the
        #: node name, otherwise the process default is used.
        self._tracer = tracer
        self.metrics = metrics if metrics is not None else default_registry()
        self._requests = self.metrics.counter(
            "rpc_requests_total",
            "RPC requests dispatched, by method.",
            labelnames=("method",),
        )
        self._errors = self.metrics.counter(
            "rpc_errors_total",
            "RPC requests that produced an error reply, by method.",
            labelnames=("method",),
        )
        self._handler_seconds = self.metrics.histogram(
            "rpc_handler_seconds",
            "Server-side handler wall time, by method.",
            labelnames=("method",),
        )
        self._request_bytes = self.metrics.counter(
            "rpc_request_payload_bytes_total",
            "Request payload bytes received, by method.",
            labelnames=("method",),
        )
        self._response_bytes = self.metrics.counter(
            "rpc_response_payload_bytes_total",
            "Response payload bytes produced, by method.",
            labelnames=("method",),
        )

    def register(self, method: str, handler: Handler) -> None:
        if method in self._handlers:
            raise ProtocolError(f"method {method!r} registered twice")
        self._handlers[method] = handler

    def methods(self) -> list[str]:
        return sorted(self._handlers)

    def dispatch(self, request: Message) -> Message:
        """Run a handler, converting exceptions into error replies."""
        method = request.method
        self._requests.labels(method=method).inc()
        self._request_bytes.labels(method=method).inc(len(request.payload))
        handler = self._handlers.get(method)
        if handler is None:
            self._errors.labels(method=method).inc()
            return Message(
                message_id=request.message_id,
                method=method,
                is_error=True,
                payload=encode_error(ProtocolError(f"unknown method {method!r}")),
            )
        # A request carrying trace context gets a handler span continuing
        # the caller's trace (the distributed half of the span tree);
        # untraced requests stay span-free, exactly as before.
        if request.trace_id:
            tracer = self._tracer if self._tracer is not None else default_tracer()
            span = tracer.remote_span(
                f"rpc.{method}", request.trace_id, request.parent_span_id
            )
        else:
            span = nullcontext()
        started = self._clock()
        try:
            with span:
                payload = handler(request.payload)
        except Exception as exc:  # noqa: BLE001 - faults must cross the wire
            self._handler_seconds.labels(method=method).observe(
                self._clock() - started
            )
            self._errors.labels(method=method).inc()
            return Message(
                message_id=request.message_id,
                method=method,
                is_error=True,
                payload=encode_error(exc),
            )
        self._handler_seconds.labels(method=method).observe(self._clock() - started)
        self._response_bytes.labels(method=method).inc(len(payload))
        return Message(
            message_id=request.message_id,
            method=method,
            is_error=False,
            payload=payload,
        )


class RpcClient:
    """Client over any transport that can round-trip a :class:`Message`.

    ``send`` is a callable mapping a request Message to a response
    Message; transports provide it (direct dispatch for in-memory, framed
    sockets for TCP).
    """

    def __init__(
        self,
        send: Callable[[Message], Message],
        metrics: MetricsRegistry | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self._send = send
        self._next_id = 0
        self._lock = threading.Lock()
        self._clock = clock
        #: Round trips issued through this client.
        self.calls = 0
        #: Calls that came back as (decoded) error replies.
        self.errors = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._requests = self.metrics.counter(
            "rpc_client_requests_total",
            "Client-side RPC round trips issued, by method.",
            labelnames=("method",),
        )
        self._client_errors = self.metrics.counter(
            "rpc_client_errors_total",
            "Client-side RPC calls that raised, by method.",
            labelnames=("method",),
        )
        self._latency = self.metrics.histogram(
            "rpc_client_seconds",
            "Client-observed round-trip latency, by method.",
            labelnames=("method",),
        )
        self._request_bytes = self.metrics.counter(
            "rpc_client_request_bytes_total",
            "Request payload bytes sent, by method.",
            labelnames=("method",),
        )
        self._response_bytes = self.metrics.counter(
            "rpc_client_response_bytes_total",
            "Response payload bytes received, by method.",
            labelnames=("method",),
        )

    def call(self, method: str, payload: bytes = b"") -> bytes:
        with self._lock:
            self._next_id += 1
            message_id = self._next_id
            self.calls += 1
        # Stamp the active span's trace context (empty outside a span)
        # onto the request, so the server's handler span joins this
        # operation's trace.
        trace_id, parent_span_id = current_trace_context()
        request = Message(
            message_id=message_id,
            method=method,
            is_error=False,
            payload=payload,
            trace_id=trace_id,
            parent_span_id=parent_span_id,
        )
        self._requests.labels(method=method).inc()
        self._request_bytes.labels(method=method).inc(len(payload))
        started = self._clock()
        try:
            response = self._send(request)
        except Exception:
            self._latency.labels(method=method).observe(self._clock() - started)
            self._client_errors.labels(method=method).inc()
            raise
        self._latency.labels(method=method).observe(self._clock() - started)
        if response.message_id != message_id:
            self._client_errors.labels(method=method).inc()
            raise ProtocolError(
                f"response id {response.message_id} does not match request {message_id}"
            )
        if response.is_error:
            with self._lock:
                self.errors += 1
            self._client_errors.labels(method=method).inc()
            raise decode_error(response.payload)
        self._response_bytes.labels(method=method).inc(len(response.payload))
        return response.payload

    def stats(self) -> dict:
        """Round-trip counters for observability.

        .. deprecated:: the registry series (``rpc_client_requests_total``
           et al. on :attr:`metrics`) are the canonical source; this dict
           remains as a stable view of the per-instance totals.
        """
        return {"calls": self.calls, "errors": self.errors}


class LoopbackTransport:
    """Zero-copy in-process transport: dispatch straight into a registry.

    An optional ``on_message(request_bytes, response_bytes)`` hook lets
    the simulation layer account for the bytes that *would* have crossed
    the network.  ``messages`` counts dispatches always; the byte
    counters are maintained only when a hook forces encoding anyway (the
    zero-copy fast path never serializes).
    """

    def __init__(
        self,
        registry: ServiceRegistry,
        on_message=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self._registry = registry
        self._on_message = on_message
        self._metrics = metrics
        #: Messages dispatched through this transport (all clients).
        self.messages = 0
        #: Encoded request/response bytes (only counted when encoding
        #: happens, i.e. an ``on_message`` hook is installed).
        self.request_bytes = 0
        self.response_bytes = 0

    def client(self) -> RpcClient:
        def send(request: Message) -> Message:
            response = self._registry.dispatch(request)
            self.messages += 1
            if self._on_message is not None:
                request_encoded = request.encode()
                response_encoded = response.encode()
                self.request_bytes += len(request_encoded)
                self.response_bytes += len(response_encoded)
                self._on_message(request_encoded, response_encoded)
            return response

        return RpcClient(send, metrics=self._metrics)

    def stats(self) -> dict:
        """Transport-level counters for observability."""
        return {
            "messages": self.messages,
            "request_bytes": self.request_bytes,
            "response_bytes": self.response_bytes,
        }
