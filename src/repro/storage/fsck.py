"""Consistency checking and index persistence for the data store.

The fingerprint index is the data store's only mutable in-memory state;
everything else lives in the blob backend.  This module provides

* **index persistence** — snapshot the index into the backend and load
  it back on restart, so a data server resumes with its dedup state
  intact (containers already resume their numbering);
* **fsck** — verify that every index entry points at container bytes
  whose hash matches its fingerprint, and report orphaned containers
  (bytes no index entry references — space leaks after a crash between
  a container seal and an index snapshot).

The checker never repairs silently: it reports, and the caller decides
(e.g. drop orphans, or rebuild refcounts from recipes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import fingerprint as _fingerprint
from repro.storage.datastore import INDEX_BLOB as _INDEX_BLOB  # noqa: F401
from repro.storage.datastore import DataStore
from repro.util.errors import NotFoundError, StorageError


def save_index(store: DataStore) -> None:
    """Snapshot the fingerprint index into the store's backend.

    ``DataStore.flush`` seals the open container and writes the
    snapshot; this wrapper remains as the operator-facing entry point.
    """
    store.flush()


def load_index(store: DataStore) -> bool:
    """Restore a snapshotted index; returns False if none exists.

    Delegates to :meth:`DataStore.load_index_snapshot`, which also
    rebuilds derived accounting (physical/stub bytes, chunk counts, and
    per-container dead space).
    """
    return store.load_index_snapshot()


@dataclass
class FsckReport:
    """Result of one consistency pass."""

    checked_chunks: int = 0
    #: Fingerprints whose stored bytes hash to something else (bit rot)
    #: or whose location is unreadable.
    corrupt: list[bytes] = field(default_factory=list)
    #: Container ids present in the backend but referenced by no entry.
    orphaned_containers: list[int] = field(default_factory=list)
    #: Container ids referenced by the index but missing from the backend.
    missing_containers: list[int] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not (self.corrupt or self.orphaned_containers or self.missing_containers)


def fsck(store: DataStore, verify_hashes: bool = True) -> FsckReport:
    """Cross-check the index against the stored containers."""
    store.flush()
    report = FsckReport()
    referenced: set[int] = set()
    for fp in store.index.fingerprints():
        location = store.index.lookup(fp)
        referenced.add(location.container_id)
        report.checked_chunks += 1
        if not verify_hashes:
            continue
        try:
            data = store.containers.read(location)
        except (NotFoundError, StorageError):
            # Unreadable location, or a container whose framing or
            # compressed body no longer decodes (bit rot).
            report.corrupt.append(fp)
            continue
        if _fingerprint(data) != fp:
            report.corrupt.append(fp)
    present: set[int] = set()
    for name in store.backend.list("container/"):
        try:
            present.add(int(name.rsplit("/", 1)[1]))
        except ValueError:
            continue
    report.orphaned_containers = sorted(present - referenced)
    report.missing_containers = sorted(referenced - present)
    return report


def drop_orphans(store: DataStore, report: FsckReport) -> int:
    """Reclaim containers fsck found orphaned; returns bytes freed."""
    freed = 0
    for container_id in report.orphaned_containers:
        if store.containers.has_container(container_id):
            freed += store.containers.payload_length(container_id)
            store.containers.delete_container(container_id)
    return freed
