"""Deduplicating storage backend: blobs, containers, index, stores,
auditing, and fragmentation analysis."""

from repro.storage.analysis import (
    FragmentationReport,
    analyze_file,
    analyze_sharded,
    fragmentation_over_generations,
)
from repro.storage.audit import FileAuditor, merkle_root
from repro.storage.backend import BlobBackend, DirectoryBackend, MemoryBackend
from repro.storage.container import DEFAULT_CONTAINER_BYTES, ContainerStore
from repro.storage.datastore import DataStore, DataStoreStats
from repro.storage.index import ChunkLocation, FingerprintIndex
from repro.storage.keystore import KeyStateRecord, KeyStore
from repro.storage.recipes import ChunkRef, FileRecipe, obfuscate_pathname
from repro.storage.sharding import ShardedDataStore

__all__ = [
    "BlobBackend",
    "ChunkLocation",
    "ChunkRef",
    "ContainerStore",
    "DEFAULT_CONTAINER_BYTES",
    "DataStore",
    "DataStoreStats",
    "DirectoryBackend",
    "FileAuditor",
    "FileRecipe",
    "FragmentationReport",
    "FingerprintIndex",
    "KeyStateRecord",
    "KeyStore",
    "MemoryBackend",
    "ShardedDataStore",
    "analyze_file",
    "analyze_sharded",
    "fragmentation_over_generations",
    "merkle_root",
    "obfuscate_pathname",
]
