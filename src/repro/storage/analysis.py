"""Storage analysis: fragmentation and dedup statistics.

Experiment B.2 observes download speed degrading over backup generations
because "deduplication introduces chunk fragmentation for subsequent
backups" (Lillibridge et al.): a new snapshot's chunks mostly live in
containers written by *older* snapshots, so restoring it touches many
scattered containers.  The paper measures the symptom; this module
measures the cause, so the effect can be quantified per file:

* how many distinct containers a file's chunks live in,
* the read amplification of a restore (container bytes fetched per file
  byte), and
* a locality score (longest run of chunks in one container).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.datastore import DataStore
from repro.storage.recipes import FileRecipe
from repro.util.errors import NotFoundError


@dataclass(frozen=True)
class FragmentationReport:
    """Restore-locality metrics for one stored file."""

    file_id: str
    chunk_count: int
    file_bytes: int
    #: Distinct containers holding at least one of the file's chunks.
    containers_touched: int
    #: Total bytes of those containers (what a naive restore fetches).
    container_bytes: int
    #: container_bytes / file_bytes — 1.0 is perfectly packed.
    read_amplification: float
    #: Number of contiguous container runs in recipe order; equals the
    #: number of container switches a sequential restore performs + 1.
    container_runs: int
    #: Mean chunks fetched per touched container.
    chunks_per_container: float


def analyze_file(store: DataStore, recipe: FileRecipe) -> FragmentationReport:
    """Compute fragmentation metrics for a file against one data store.

    Every chunk of the recipe must be indexed in ``store`` (for sharded
    deployments, run per shard and merge, or use
    :func:`analyze_sharded`).
    """
    containers: dict[int, int] = {}
    runs = 0
    previous_container: int | None = None
    for ref in recipe.chunks:
        location = store.index.lookup(ref.fingerprint)
        containers[location.container_id] = (
            containers.get(location.container_id, 0) + 1
        )
        if location.container_id != previous_container:
            runs += 1
            previous_container = location.container_id
    container_bytes = 0
    for container_id in containers:
        # Uncompressed payload length: what a restore actually handles
        # per container, independent of the on-disk compression codec.
        container_bytes += store.containers.payload_length(container_id)
    file_bytes = max(1, recipe.size)
    return FragmentationReport(
        file_id=recipe.file_id,
        chunk_count=recipe.chunk_count,
        file_bytes=recipe.size,
        containers_touched=len(containers),
        container_bytes=container_bytes,
        read_amplification=container_bytes / file_bytes,
        container_runs=runs,
        chunks_per_container=(
            recipe.chunk_count / len(containers) if containers else 0.0
        ),
    )


def analyze_sharded(shards, recipe: FileRecipe) -> FragmentationReport:
    """Fragmentation metrics across a sharded deployment.

    ``shards`` is either the
    :class:`~repro.storage.sharding.ShardedDataStore` itself (preferred
    — analysis then follows the store's real ring, node ids, and
    replica placement) or a plain list of :class:`DataStore` shards,
    assumed to be ring nodes ``node-0 .. node-(n-1)`` in order.  Each
    chunk is attributed to the first node on its ring preference list
    whose index holds it, so a replica that landed off-primary (a
    degraded write, or placement not yet rebalanced) is still found
    instead of raising.
    """
    from repro.storage.sharding import HashRing, ShardedDataStore

    if isinstance(shards, ShardedDataStore):
        ring = shards.ring
        node_ids = shards.node_ids()
        stores = {node: shards.node_store(node) for node in node_ids}
    else:
        node_ids = [f"node-{index}" for index in range(len(shards))]
        ring = HashRing(node_ids)
        stores = dict(zip(node_ids, shards))
    node_index = {node: index for index, node in enumerate(node_ids)}
    containers: dict[tuple[int, int], int] = {}
    runs = 0
    previous: tuple[int, int] | None = None
    container_bytes = 0
    seen_containers: set[tuple[int, int]] = set()
    for ref in recipe.chunks:
        shard = None
        location = None
        for node in ring.preference(ref.fingerprint, len(node_ids)):
            try:
                location = stores[node].index.lookup(ref.fingerprint)
            except NotFoundError:
                continue
            shard = stores[node]
            shard_index = node_index[node]
            break
        if location is None or shard is None:
            raise NotFoundError(
                f"chunk {ref.fingerprint.hex()} not indexed on any shard"
            )
        key = (shard_index, location.container_id)
        containers[key] = containers.get(key, 0) + 1
        if key != previous:
            runs += 1
            previous = key
        if key not in seen_containers:
            seen_containers.add(key)
            container_bytes += shard.containers.payload_length(
                location.container_id
            )
    file_bytes = max(1, recipe.size)
    return FragmentationReport(
        file_id=recipe.file_id,
        chunk_count=recipe.chunk_count,
        file_bytes=recipe.size,
        containers_touched=len(containers),
        container_bytes=container_bytes,
        read_amplification=container_bytes / file_bytes,
        container_runs=runs,
        chunks_per_container=(
            recipe.chunk_count / len(containers) if containers else 0.0
        ),
    )


def fragmentation_over_generations(
    store: DataStore, recipes: list[FileRecipe]
) -> list[FragmentationReport]:
    """Reports for a series of backup generations, oldest first.

    The Experiment B.2 effect shows up as ``containers_touched`` and
    ``read_amplification`` trending upward across generations.
    """
    reports = []
    for recipe in recipes:
        try:
            reports.append(analyze_file(store, recipe))
        except NotFoundError:
            # A generation whose chunks were partially GCed cannot be
            # analyzed meaningfully; skip it rather than guess.
            continue
    return reports
