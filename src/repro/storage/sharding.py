"""Sharding across multiple data-store servers.

The paper's testbed runs four data-store servers plus one key-store
server; a client spreads its data across all data servers so each
processes a smaller share (Section V-B, "Parallelization").  This module
routes chunk operations by fingerprint (so a chunk deterministically
lives on one shard and global deduplication is preserved) and
recipes/stub files by file identifier.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.storage.datastore import DataStore, DataStoreStats
from repro.util.errors import ConfigurationError

#: Upper bound on the scatter-gather pool: reads fan out one task per
#: shard touched, and more threads than shards never helps.
DEFAULT_FETCH_WORKERS = 8


class ShardedDataStore:
    """Fans a DataStore-shaped API out over several shards.

    Placement is ``int(fingerprint) mod shards`` — deterministic, so two
    clients uploading the same chunk hit the same shard and deduplicate
    against each other exactly as with a single server.
    """

    def __init__(
        self, shards: list[DataStore], fetch_workers: int | None = None
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one data-store shard")
        self._shards = shards
        if fetch_workers is None:
            fetch_workers = min(len(shards), DEFAULT_FETCH_WORKERS)
        if fetch_workers < 1:
            raise ConfigurationError("need at least one fetch worker")
        self.fetch_workers = fetch_workers
        self._fetch_pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    @property
    def shards(self) -> list[DataStore]:
        return list(self._shards)

    def shard_for_chunk(self, fingerprint: bytes) -> DataStore:
        return self._shards[self.shard_index(fingerprint)]

    def shard_index(self, fingerprint: bytes) -> int:
        return int.from_bytes(fingerprint[:8], "big") % len(self._shards)

    def shard_for_file(self, file_id: str) -> DataStore:
        digest = sum(file_id.encode("utf-8"))
        return self._shards[digest % len(self._shards)]

    # -- chunk API -------------------------------------------------------------

    def has_chunk(self, fingerprint: bytes) -> bool:
        return self.shard_for_chunk(fingerprint).has_chunk(fingerprint)

    def put_chunk(self, fingerprint: bytes, data: bytes) -> bool:
        return self.shard_for_chunk(fingerprint).put_chunk(fingerprint, data)

    def has_many(self, fingerprints: list[bytes]) -> list[bool]:
        """Batch existence check routed per shard (order-preserving).

        Each shard sees one ``has_many`` sub-batch, so over RPC the cost
        is one message per *shard touched*, not one per fingerprint.
        """
        groups: dict[int, list[int]] = {}
        for position, fp in enumerate(fingerprints):
            groups.setdefault(self.shard_index(fp), []).append(position)
        flags = [False] * len(fingerprints)
        for index, positions in groups.items():
            answers = self._shards[index].has_many([fingerprints[p] for p in positions])
            for position, flag in zip(positions, answers):
                flags[position] = flag
        return flags

    def put_many(self, chunks: list[tuple[bytes, bytes]]) -> list[bool]:
        """Store many chunks, one ``put_many`` sub-batch per shard.

        Returns per-item "was new" status in request order.  Placement
        is deterministic by fingerprint, so the stored bytes are
        identical to per-chunk puts.
        """
        groups: dict[int, list[int]] = {}
        for position, (fp, _data) in enumerate(chunks):
            groups.setdefault(self.shard_index(fp), []).append(position)
        statuses = [False] * len(chunks)
        for index, positions in groups.items():
            answers = self._shards[index].put_many([chunks[p] for p in positions])
            for position, status in zip(positions, answers):
                statuses[position] = status
        return statuses

    def get_chunk(self, fingerprint: bytes) -> bytes:
        return self.shard_for_chunk(fingerprint).get_chunk(fingerprint)

    def _get_fetch_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._fetch_pool is None:
                self._fetch_pool = ThreadPoolExecutor(
                    max_workers=self.fetch_workers,
                    thread_name_prefix="shard-fetch",
                )
            return self._fetch_pool

    def close(self) -> None:
        """Reap the scatter-gather pool; it restarts lazily on next use."""
        with self._pool_lock:
            pool, self._fetch_pool = self._fetch_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def get_many(self, fingerprints: list[bytes]) -> list[bytes]:
        """Read many chunks, sub-fetching the shards concurrently.

        One ``get_many`` sub-batch per shard touched, issued in parallel
        on a bounded pool (scatter), results restored to request order by
        position (gather).  A missing fingerprint raises the shard's
        :class:`~repro.util.errors.NotFoundError` — the first one in
        shard-group order, deterministically.
        """
        groups: dict[int, list[int]] = {}
        for position, fp in enumerate(fingerprints):
            groups.setdefault(self.shard_index(fp), []).append(position)
        results: list[bytes | None] = [None] * len(fingerprints)

        def fetch(index: int, positions: list[int]) -> list[bytes]:
            return self._shards[index].get_many(
                [fingerprints[p] for p in positions]
            )

        ordered = list(groups.items())
        if len(ordered) <= 1 or self.fetch_workers == 1:
            answer_sets = [fetch(index, positions) for index, positions in ordered]
        else:
            pool = self._get_fetch_pool()
            futures = [
                pool.submit(fetch, index, positions)
                for index, positions in ordered
            ]
            answer_sets = [future.result() for future in futures]
        for (index, positions), answers in zip(ordered, answer_sets):
            for position, data in zip(positions, answers):
                results[position] = data
        return [data for data in results if data is not None]

    def release_chunk(self, fingerprint: bytes) -> None:
        self.shard_for_chunk(fingerprint).release_chunk(fingerprint)

    def flush(self) -> None:
        for shard in self._shards:
            shard.flush()

    # -- recipes and stub files ---------------------------------------------------

    def put_recipe(self, file_id: str, data: bytes) -> None:
        self.shard_for_file(file_id).put_recipe(file_id, data)

    def get_recipe(self, file_id: str) -> bytes:
        return self.shard_for_file(file_id).get_recipe(file_id)

    def delete_recipe(self, file_id: str) -> None:
        self.shard_for_file(file_id).delete_recipe(file_id)

    def has_recipe(self, file_id: str) -> bool:
        return self.shard_for_file(file_id).has_recipe(file_id)

    def list_recipes(self) -> list[str]:
        names: list[str] = []
        for shard in self._shards:
            names.extend(shard.list_recipes())
        return sorted(names)

    def put_stub_file(self, file_id: str, data: bytes) -> None:
        self.shard_for_file(file_id).put_stub_file(file_id, data)

    def get_stub_file(self, file_id: str) -> bytes:
        return self.shard_for_file(file_id).get_stub_file(file_id)

    def delete_stub_file(self, file_id: str) -> None:
        self.shard_for_file(file_id).delete_stub_file(file_id)

    # -- accounting -------------------------------------------------------------

    @property
    def stats(self) -> DataStoreStats:
        """Aggregate byte accounting across all shards."""
        total = DataStoreStats()
        for shard in self._shards:
            total.logical_bytes += shard.stats.logical_bytes
            total.physical_bytes += shard.stats.physical_bytes
            total.stub_bytes += shard.stats.stub_bytes
            total.chunks_received += shard.stats.chunks_received
            total.chunks_stored += shard.stats.chunks_stored
        return total
