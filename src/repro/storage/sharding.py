"""Sharding across multiple data-store servers.

The paper's testbed runs four data-store servers plus one key-store
server; a client spreads its data across all data servers so each
processes a smaller share (Section V-B, "Parallelization").  This module
routes chunk operations by fingerprint (so a chunk deterministically
lives on one shard and global deduplication is preserved) and
recipes/stub files by file identifier.

Placement is a seeded **consistent-hash ring with virtual nodes**
(:class:`HashRing`): every node owns many pseudo-random arcs of a
64-bit circle, a key belongs to the first ``replicas`` distinct nodes
clockwise of its hashed position, and membership changes move only the
keys whose arcs changed owner (~1/N of them) instead of reshuffling
every placement the way ``hash mod N`` does.

.. note:: **Placement compatibility.**  Earlier revisions placed chunks
   with ``int(fingerprint) mod shards`` and files with
   ``sum(file_id.encode()) mod shards`` — the latter collided all
   anagram file ids onto one shard.  Both now route through the same
   ring hash, so data written by an older deployment must be migrated
   (see :func:`repro.storage.repair.rebalance`) before a new client can
   find it.
"""

from __future__ import annotations

import bisect
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.crypto.hashing import sha256
from repro.storage.datastore import DataStore, DataStoreStats
from repro.util.errors import ConfigurationError, NotFoundError, StorageError

#: Upper bound on the scatter-gather pool: reads fan out one task per
#: shard touched, and more threads than shards never helps.
DEFAULT_FETCH_WORKERS = 8

#: Virtual nodes per physical node.  64 arcs keep per-node ownership
#: within a few percent of 1/N while membership changes stay cheap.
DEFAULT_VNODES = 64

#: Default seed for ring hashing.  Every client of one deployment must
#: use the same seed (and the same node order) or placements diverge.
RING_SEED = b"reed-ring-v1"


class HashRing:
    """A seeded consistent-hash ring with virtual nodes.

    Nodes are opaque string ids.  Each node projects ``vnodes``
    pseudo-random points onto a 64-bit circle; a key's **preference
    list** is the first ``n`` *distinct* nodes clockwise of the key's
    own hashed position.  The ring is fully deterministic in
    ``(seed, vnodes, node ids)`` — two clients that agree on those see
    identical placement with no coordination.

    Nodes can be marked **down** without leaving the ring: a down node
    keeps owning its arcs (so its keys come home when it recovers) but
    readers and writers skip it.  ``remove_node`` is the membership
    change: its arcs are re-owned by the survivors.
    """

    def __init__(
        self,
        nodes: list[str] | tuple[str, ...] = (),
        vnodes: int = DEFAULT_VNODES,
        seed: bytes = RING_SEED,
    ) -> None:
        if vnodes < 1:
            raise ConfigurationError("need at least one virtual node per node")
        self.vnodes = vnodes
        self.seed = seed
        self._up: dict[str, bool] = {}
        self._positions: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add_node(node)

    # -- hashing ---------------------------------------------------------------

    def _hash(self, token: bytes) -> int:
        return int.from_bytes(sha256(self.seed + token)[:8], "big")

    def key_position(self, key: bytes | str) -> int:
        """Ring position of a key (chunk fingerprint or file id)."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return self._hash(b"k|" + key)

    # -- membership ------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All member nodes, up or down, sorted."""
        return sorted(self._up)

    def live_nodes(self) -> list[str]:
        return sorted(node for node, up in self._up.items() if up)

    def down_nodes(self) -> list[str]:
        return sorted(node for node, up in self._up.items() if not up)

    def __len__(self) -> int:
        return len(self._up)

    def __contains__(self, node: str) -> bool:
        return node in self._up

    def is_up(self, node: str) -> bool:
        if node not in self._up:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        return self._up[node]

    def add_node(self, node: str) -> None:
        if node in self._up:
            raise ConfigurationError(f"node {node!r} already on the ring")
        self._up[node] = True
        for index in range(self.vnodes):
            position = self._hash(f"n|{node}|{index}".encode("utf-8"))
            at = bisect.bisect_left(self._positions, position)
            # Equal positions (astronomically rare) order by node name so
            # every client breaks the tie the same way.
            while (
                at < len(self._positions)
                and self._positions[at] == position
                and self._owners[at] < node
            ):
                at += 1
            self._positions.insert(at, position)
            self._owners.insert(at, node)

    def remove_node(self, node: str) -> None:
        if node not in self._up:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        del self._up[node]
        kept = [i for i, owner in enumerate(self._owners) if owner != node]
        self._positions = [self._positions[i] for i in kept]
        self._owners = [self._owners[i] for i in kept]

    def mark_down(self, node: str) -> None:
        """Flag a node unreachable; it keeps its arcs (see class docs)."""
        if node not in self._up:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        self._up[node] = False

    def mark_up(self, node: str) -> None:
        if node not in self._up:
            raise ConfigurationError(f"node {node!r} is not on the ring")
        self._up[node] = True

    def copy(self) -> "HashRing":
        """A snapshot (same seed/vnodes/membership); used by rebalancing."""
        twin = HashRing(vnodes=self.vnodes, seed=self.seed)
        for node, up in self._up.items():
            twin.add_node(node)
            if not up:
                twin.mark_down(node)
        return twin

    # -- placement -------------------------------------------------------------

    def preference(self, key: bytes | str, n: int = 1) -> list[str]:
        """The first ``n`` distinct nodes clockwise of ``key`` — its owners.

        Down nodes are **included**: ownership is a property of
        membership, not liveness, so a recovering node finds its keys
        where repair re-replicated them.  Callers skip down owners at
        read/write time.
        """
        if not self._up:
            raise ConfigurationError("ring has no nodes")
        n = min(n, len(self._up))
        start = bisect.bisect_right(self._positions, self.key_position(key))
        chosen: list[str] = []
        seen: set[str] = set()
        for step in range(len(self._owners)):
            owner = self._owners[(start + step) % len(self._owners)]
            if owner not in seen:
                seen.add(owner)
                chosen.append(owner)
                if len(chosen) == n:
                    break
        return chosen

    def primary(self, key: bytes | str) -> str:
        return self.preference(key, 1)[0]

    def ownership_shares(self, samples: int = 4096) -> dict[str, float]:
        """Approximate fraction of key space owned (primarily) per node.

        Deterministic: samples ``samples`` synthetic keys derived from
        the ring seed.  Used by ``reed ring`` and the balance tests.
        """
        counts = {node: 0 for node in self._up}
        for index in range(samples):
            counts[self.primary(b"sample|%d" % index)] += 1
        return {node: count / samples for node, count in sorted(counts.items())}


class ShardedDataStore:
    """Fans a DataStore-shaped API out over several shards.

    Placement follows a :class:`HashRing` keyed by fingerprint (chunks)
    or file id (recipes and stub files), so two clients uploading the
    same chunk hit the same shard and deduplicate against each other
    exactly as with a single server.  With ``replicas`` > 1, every key
    is written to its first R owners and a write succeeds once
    ``write_quorum`` of them acknowledged; reads fall back through the
    remaining owners when the preferred one misses or fails.
    """

    def __init__(
        self,
        shards: list[DataStore],
        fetch_workers: int | None = None,
        replicas: int = 1,
        write_quorum: int | None = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        if not shards:
            raise ConfigurationError("need at least one data-store shard")
        if replicas < 1:
            raise ConfigurationError("need at least one replica")
        if replicas > len(shards):
            raise ConfigurationError(
                f"cannot keep {replicas} replicas on {len(shards)} shard(s)"
            )
        if write_quorum is None:
            write_quorum = 1
        if not 1 <= write_quorum <= replicas:
            raise ConfigurationError(
                f"write quorum {write_quorum} outside 1..{replicas}"
            )
        self.replicas = replicas
        self.write_quorum = write_quorum
        self._stores: dict[str, DataStore] = {}
        self._order: list[str] = []
        self._next_node = 0
        self.ring = HashRing(vnodes=vnodes)
        for shard in shards:
            self._attach(shard)
        if fetch_workers is None:
            fetch_workers = min(len(shards), DEFAULT_FETCH_WORKERS)
        if fetch_workers < 1:
            raise ConfigurationError("need at least one fetch worker")
        self.fetch_workers = fetch_workers
        self._fetch_pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- membership ------------------------------------------------------------

    def _attach(self, store: DataStore, node_id: str | None = None) -> str:
        node = node_id if node_id is not None else f"node-{self._next_node}"
        self._next_node += 1
        self.ring.add_node(node)
        self._stores[node] = store
        self._order.append(node)
        return node

    def node_ids(self) -> list[str]:
        """Node ids in attach order (defines the ``shards`` list order)."""
        return list(self._order)

    def add_shard(self, store: DataStore, node_id: str | None = None) -> str:
        """Join a shard; returns its node id.

        Joining changes ring ownership for ~1/N of the keys — run
        :func:`repro.storage.repair.rebalance` (with the pre-join ring
        snapshot) to migrate exactly those keys.
        """
        if store in self._stores.values():
            raise ConfigurationError("shard already attached")
        return self._attach(store, node_id)

    def remove_shard(self, node_id: str) -> DataStore:
        """Leave the ring; the departed shard's data is NOT migrated
        automatically — rebalance before dropping the store."""
        if node_id not in self._stores:
            raise ConfigurationError(f"node {node_id!r} is not attached")
        if len(self._order) == 1:
            raise ConfigurationError("cannot remove the last shard")
        if self.replicas > len(self._order) - 1:
            raise ConfigurationError(
                f"removing {node_id!r} leaves fewer shards than replicas"
            )
        self.ring.remove_node(node_id)
        self._order.remove(node_id)
        return self._stores.pop(node_id)

    def mark_down(self, node_id: str) -> None:
        self.ring.mark_down(node_id)

    def mark_up(self, node_id: str) -> None:
        self.ring.mark_up(node_id)

    @property
    def shards(self) -> list[DataStore]:
        return [self._stores[node] for node in self._order]

    # -- placement -------------------------------------------------------------

    def _owners(self, key: bytes | str) -> list[str]:
        return self.ring.preference(key, self.replicas)

    def _up_owners(self, key: bytes | str) -> list[str]:
        return [n for n in self._owners(key) if self.ring.is_up(n)]

    def shard_for_chunk(self, fingerprint: bytes) -> DataStore:
        return self._stores[self.ring.primary(fingerprint)]

    def shard_index(self, fingerprint: bytes) -> int:
        """Attach-order index of the chunk's primary owner."""
        return self._order.index(self.ring.primary(fingerprint))

    def shard_for_file(self, file_id: str) -> DataStore:
        # File ids take the same fingerprint-quality ring hash as chunks
        # (the old byte-sum hash collided all anagram ids onto one shard).
        return self._stores[self.ring.primary(file_id)]

    # -- replicated read/write helpers ----------------------------------------

    def _write_all(self, key: bytes | str, op, tolerate=()) -> list:
        """Apply ``op`` to every up owner; enforce the write quorum.

        Returns the per-owner results in preference order.  Exceptions
        of a type in ``tolerate`` count as success (e.g. NotFound on
        delete of an under-replicated key).
        """
        owners = self._owners(key)
        results: list = []
        successes = 0
        first_error: Exception | None = None
        for node in owners:
            if not self.ring.is_up(node):
                results.append(None)
                continue
            try:
                results.append(op(self._stores[node]))
                successes += 1
            except tolerate as exc:
                results.append(exc)
                successes += 1
            except Exception as exc:  # noqa: BLE001 - folded into quorum
                results.append(exc)
                if first_error is None:
                    first_error = exc
        if successes < self.write_quorum:
            if first_error is not None:
                raise first_error
            raise StorageError(
                f"write quorum {self.write_quorum} not met "
                f"({successes}/{len(owners)} replicas up)"
            )
        return results

    def _read_any(self, key: bytes | str, op):
        """Try ``op`` on each up owner in preference order."""
        last: Exception | None = None
        for node in self._up_owners(key):
            try:
                return op(self._stores[node])
            except Exception as exc:  # noqa: BLE001 - fall through replicas
                last = exc
        if last is not None:
            raise last
        raise StorageError(f"no live replica for key {key!r}")

    # -- chunk API -------------------------------------------------------------

    def has_chunk(self, fingerprint: bytes) -> bool:
        for node in self._up_owners(fingerprint):
            if self._stores[node].has_chunk(fingerprint):
                return True
        return False

    def put_chunk(self, fingerprint: bytes, data: bytes) -> bool:
        results = self._write_all(
            fingerprint, lambda store: store.put_chunk(fingerprint, data)
        )
        for status in results:
            if isinstance(status, bool):
                return status
        return False

    def has_many(self, fingerprints: list[bytes]) -> list[bool]:
        """Batch existence check routed per shard (order-preserving).

        Each shard sees one ``has_many`` sub-batch, so over RPC the cost
        is one message per *shard touched*, not one per fingerprint.
        Like :meth:`has_chunk`, every up owner is consulted before a
        fingerprint reads absent: a "no" (or a failure) on the preferred
        replica falls back through the remaining owners, so a chunk that
        landed only on a later replica (degraded write) is still found.
        """
        flags = [False] * len(fingerprints)
        candidates = [self._up_owners(fp) for fp in fingerprints]
        cursor = [0] * len(fingerprints)
        unresolved = [p for p in range(len(fingerprints)) if candidates[p]]
        while unresolved:
            groups: dict[str, list[int]] = {}
            for position in unresolved:
                groups.setdefault(
                    candidates[position][cursor[position]], []
                ).append(position)
            retry: list[int] = []
            for node, positions in groups.items():
                try:
                    answers = self._stores[node].has_many(
                        [fingerprints[p] for p in positions]
                    )
                except Exception:  # noqa: BLE001 - ask the next replica
                    answers = [False] * len(positions)
                for position, flag in zip(positions, answers):
                    if flag:
                        flags[position] = True
                    elif cursor[position] + 1 < len(candidates[position]):
                        cursor[position] += 1
                        retry.append(position)
            unresolved = retry
        return flags

    def put_many(self, chunks: list[tuple[bytes, bytes]]) -> list[bool]:
        """Store many chunks, one ``put_many`` sub-batch per shard.

        Returns per-item "was new" status (from the most-preferred
        replica that answered) in request order.  Placement is
        deterministic by fingerprint, so the stored bytes are identical
        to per-chunk puts.  Raises when any item misses the write
        quorum.
        """
        placements = [self._owners(fp) for fp, _data in chunks]
        per_node: dict[str, list[int]] = {}
        for position, owners in enumerate(placements):
            for node in owners:
                if self.ring.is_up(node):
                    per_node.setdefault(node, []).append(position)
        answers: dict[str, list] = {}
        for node, positions in per_node.items():
            try:
                answers[node] = self._stores[node].put_many(
                    [chunks[p] for p in positions]
                )
            except Exception as exc:  # noqa: BLE001 - folded per item
                answers[node] = [exc] * len(positions)
        slots = {
            node: {position: i for i, position in enumerate(positions)}
            for node, positions in per_node.items()
        }
        statuses = [False] * len(chunks)
        for position, owners in enumerate(placements):
            successes = 0
            status: bool | None = None
            first_error: Exception | None = None
            for node in owners:
                if not self.ring.is_up(node):
                    continue
                answer = answers[node][slots[node][position]]
                if isinstance(answer, Exception):
                    first_error = first_error or answer
                else:
                    successes += 1
                    if status is None:
                        status = answer
            if successes < self.write_quorum:
                raise first_error or StorageError(
                    f"write quorum {self.write_quorum} not met for chunk "
                    f"{chunks[position][0].hex()}"
                )
            statuses[position] = bool(status)
        return statuses

    def get_chunk(self, fingerprint: bytes) -> bytes:
        return self._read_any(
            fingerprint, lambda store: store.get_chunk(fingerprint)
        )

    def _get_fetch_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._fetch_pool is None:
                self._fetch_pool = ThreadPoolExecutor(
                    max_workers=self.fetch_workers,
                    thread_name_prefix="shard-fetch",
                )
            return self._fetch_pool

    def close(self) -> None:
        """Reap the scatter-gather pool; it restarts lazily on next use."""
        with self._pool_lock:
            pool, self._fetch_pool = self._fetch_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def get_many(self, fingerprints: list[bytes]) -> list[bytes]:
        """Read many chunks, sub-fetching the shards concurrently.

        One ``get_many`` sub-batch per preferred shard, issued in
        parallel on a bounded pool (scatter), results restored to
        request order by position (gather).  Items the preferred owner
        cannot serve fall back through the remaining replicas; a
        fingerprint no live replica holds raises
        :class:`~repro.util.errors.NotFoundError` naming it.
        """
        results: list[bytes | None] = [None] * len(fingerprints)
        candidates = [self._up_owners(fp) for fp in fingerprints]
        cursor = [0] * len(fingerprints)
        unresolved = list(range(len(fingerprints)))

        def fetch(node: str, positions: list[int]) -> list[bytes]:
            return self._stores[node].get_many(
                [fingerprints[p] for p in positions]
            )

        first_round = True
        while unresolved:
            groups: dict[str, list[int]] = {}
            exhausted: list[int] = []
            for position in unresolved:
                if cursor[position] >= len(candidates[position]):
                    exhausted.append(position)
                else:
                    node = candidates[position][cursor[position]]
                    groups.setdefault(node, []).append(position)
            if exhausted:
                shown = ", ".join(
                    fingerprints[p].hex() for p in exhausted[:8]
                )
                suffix = (
                    "" if len(exhausted) <= 8 else f" (+{len(exhausted) - 8} more)"
                )
                raise NotFoundError(
                    f"{len(exhausted)} chunk(s) missing from every replica: "
                    f"{shown}{suffix}"
                )
            ordered = list(groups.items())
            retry: list[int] = []
            if first_round and len(ordered) > 1 and self.fetch_workers > 1:
                pool = self._get_fetch_pool()
                futures = [
                    pool.submit(fetch, node, positions)
                    for node, positions in ordered
                ]
                answer_sets = []
                for future in futures:
                    try:
                        answer_sets.append(future.result())
                    except Exception as exc:  # noqa: BLE001 - retried below
                        answer_sets.append(exc)
            else:
                answer_sets = []
                for node, positions in ordered:
                    try:
                        answer_sets.append(fetch(node, positions))
                    except Exception as exc:  # noqa: BLE001 - retried below
                        answer_sets.append(exc)
            for (node, positions), answer_set in zip(ordered, answer_sets):
                if isinstance(answer_set, Exception):
                    # Batch failed (some item missing on this shard):
                    # resolve per item so only the misses fall through.
                    for position in positions:
                        try:
                            results[position] = self._stores[node].get_chunk(
                                fingerprints[position]
                            )
                        except Exception:  # noqa: BLE001 - next replica
                            cursor[position] += 1
                            retry.append(position)
                else:
                    # A short reply must not silently drop chunks:
                    # re-route the unanswered tail to the next replica.
                    for position in positions[len(answer_set):]:
                        cursor[position] += 1
                        retry.append(position)
                    for position, data in zip(positions, answer_set):
                        results[position] = data
            unresolved = retry
            first_round = False
        return [data for data in results if data is not None]

    def release_chunk(self, fingerprint: bytes) -> None:
        self._write_all(
            fingerprint,
            lambda store: store.release_chunk(fingerprint),
            tolerate=(NotFoundError,),
        )

    def refcount_many(self, fingerprints: list[bytes]) -> list[int]:
        """Highest per-replica reference count for each fingerprint.

        Replicas can disagree after degraded writes or repairs; the
        maximum is the count the repair path replays onto fresh copies.
        """
        counts = [0] * len(fingerprints)
        for position, fp in enumerate(fingerprints):
            for node in self._up_owners(fp):
                counts[position] = max(
                    counts[position], self._stores[node].index.refcount(fp)
                )
        return counts

    def addref_many(self, refs: list[tuple[bytes, int]]) -> None:
        """Add extra references on every up owner holding each chunk.

        Raises :class:`~repro.util.errors.StorageError` on a
        non-positive count — the same contract as ``index.addref`` and
        ``DataStore.addref_many``.
        """
        for fp, count in refs:
            if count < 1:
                raise StorageError("reference count delta must be positive")
            for node in self._up_owners(fp):
                try:
                    self._stores[node].index.addref(fp, count)
                except NotFoundError:
                    continue  # replica never held it

    def flush(self) -> None:
        for node in self._order:
            if self.ring.is_up(node):
                self._stores[node].flush()

    # -- recipes and stub files ---------------------------------------------------

    def put_recipe(self, file_id: str, data: bytes) -> None:
        self._write_all(file_id, lambda store: store.put_recipe(file_id, data))

    def get_recipe(self, file_id: str) -> bytes:
        return self._read_any(file_id, lambda store: store.get_recipe(file_id))

    def delete_recipe(self, file_id: str) -> None:
        self._write_all(
            file_id,
            lambda store: store.delete_recipe(file_id),
            tolerate=(NotFoundError,),
        )

    def has_recipe(self, file_id: str) -> bool:
        for node in self._up_owners(file_id):
            if self._stores[node].has_recipe(file_id):
                return True
        return False

    def list_recipes(self) -> list[str]:
        names: set[str] = set()
        for node in self._order:
            if self.ring.is_up(node):
                names.update(self._stores[node].list_recipes())
        return sorted(names)

    def put_stub_file(self, file_id: str, data: bytes) -> None:
        self._write_all(
            file_id, lambda store: store.put_stub_file(file_id, data)
        )

    def get_stub_file(self, file_id: str) -> bytes:
        return self._read_any(
            file_id, lambda store: store.get_stub_file(file_id)
        )

    def delete_stub_file(self, file_id: str) -> None:
        self._write_all(
            file_id,
            lambda store: store.delete_stub_file(file_id),
            tolerate=(NotFoundError,),
        )

    def list_chunks(self) -> list[bytes]:
        """Every fingerprint indexed on any live shard (replicas deduped)."""
        fps: set[bytes] = set()
        for node in self._order:
            if self.ring.is_up(node):
                fps.update(self._stores[node].list_chunks())
        return sorted(fps)

    def list_stub_files(self) -> list[str]:
        names: set[str] = set()
        for node in self._order:
            if self.ring.is_up(node):
                names.update(self._stores[node].list_stub_files())
        return sorted(names)

    # -- per-node access (repair daemon / rebalancer) ---------------------------

    def node_store(self, node_id: str) -> DataStore:
        if node_id not in self._stores:
            raise ConfigurationError(f"node {node_id!r} is not attached")
        return self._stores[node_id]

    def node_chunk_list(self, node_id: str) -> list[bytes]:
        return self.node_store(node_id).list_chunks()

    def node_has_many(self, node_id: str, fingerprints: list[bytes]) -> list[bool]:
        return self.node_store(node_id).has_many(fingerprints)

    def node_get_many(self, node_id: str, fingerprints: list[bytes]) -> list[bytes]:
        return self.node_store(node_id).get_many(fingerprints)

    def node_put_many(
        self, node_id: str, chunks: list[tuple[bytes, bytes]]
    ) -> None:
        self.node_store(node_id).put_many(chunks)

    def node_refcounts(self, node_id: str, fingerprints: list[bytes]) -> list[int]:
        return self.node_store(node_id).refcount_many(fingerprints)

    def node_addref_many(self, node_id: str, refs: list[tuple[bytes, int]]) -> None:
        self.node_store(node_id).addref_many(refs)

    def node_recipe_list(self, node_id: str) -> list[str]:
        return self.node_store(node_id).list_recipes()

    def node_recipe_get(self, node_id: str, file_id: str) -> bytes:
        return self.node_store(node_id).get_recipe(file_id)

    def node_recipe_put(self, node_id: str, file_id: str, data: bytes) -> None:
        self.node_store(node_id).put_recipe(file_id, data)

    def node_stub_list(self, node_id: str) -> list[str]:
        return self.node_store(node_id).list_stub_files()

    def node_stub_get(self, node_id: str, file_id: str) -> bytes:
        return self.node_store(node_id).get_stub_file(file_id)

    def node_stub_put(self, node_id: str, file_id: str, data: bytes) -> None:
        self.node_store(node_id).put_stub_file(file_id, data)

    # -- accounting -------------------------------------------------------------

    @property
    def stats(self) -> DataStoreStats:
        """Aggregate byte accounting across all shards.

        With ``replicas`` > 1 the physical figures count every replica —
        that is the true on-disk footprint of the deployment.
        """
        total = DataStoreStats()
        for shard in self.shards:
            total.logical_bytes += shard.stats.logical_bytes
            total.physical_bytes += shard.stats.physical_bytes
            total.stub_bytes += shard.stats.stub_bytes
            total.chunks_received += shard.stats.chunks_received
            total.chunks_stored += shard.stats.chunks_stored
            total.container_payload_bytes += shard.stats.container_payload_bytes
            total.container_compressed_bytes += shard.stats.container_compressed_bytes
        return total
