"""The fingerprint index.

The REED server keeps a fingerprint index tracking every trimmed package
uploaded to the cloud (Section III-A): a given fingerprint maps to the
container holding its bytes, plus a reference count so space can be
reclaimed when the last file referencing a chunk is deleted.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.util.codec import Decoder, Encoder
from repro.util.errors import NotFoundError, StorageError


@dataclass(frozen=True)
class ChunkLocation:
    """Where a chunk's bytes live: a container and a slice within it."""

    container_id: int
    offset: int
    length: int


@dataclass
class _IndexEntry:
    location: ChunkLocation
    refcount: int


class FingerprintIndex:
    """Thread-safe fingerprint → (location, refcount) map.

    ``lookup``/``contains`` are the dedup test on the upload path;
    ``add``/``addref``/``release`` maintain reference counts as file
    recipes are stored and deleted.
    """

    def __init__(self) -> None:
        self._entries: dict[bytes, _IndexEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, fingerprint: bytes) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def lookup(self, fingerprint: bytes) -> ChunkLocation:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            return entry.location

    def refcount(self, fingerprint: bytes) -> int:
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.refcount if entry else 0

    def add(self, fingerprint: bytes, location: ChunkLocation) -> None:
        """Register a newly stored chunk with refcount 1."""
        with self._lock:
            if fingerprint in self._entries:
                raise StorageError(
                    f"fingerprint {fingerprint.hex()} already indexed"
                )
            self._entries[fingerprint] = _IndexEntry(location=location, refcount=1)

    def addref(self, fingerprint: bytes, count: int = 1) -> None:
        """Count ``count`` more references to an existing chunk.

        ``count`` > 1 lets the repair path replay a source replica's
        reference count onto a restored copy in one call.
        """
        if count < 1:
            raise StorageError("reference count delta must be positive")
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            entry.refcount += count

    def release(self, fingerprint: bytes) -> bool:
        """Drop one reference; returns True when the chunk became garbage."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            entry.refcount -= 1
            if entry.refcount > 0:
                return False
            del self._entries[fingerprint]
            return True

    def fingerprints(self) -> list[bytes]:
        with self._lock:
            return list(self._entries)

    # -- persistence -------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize the index (stored alongside containers for restart)."""
        with self._lock:
            enc = Encoder().uint(len(self._entries))
            for fingerprint, entry in self._entries.items():
                enc.blob(fingerprint)
                enc.uint(entry.location.container_id)
                enc.uint(entry.location.offset)
                enc.uint(entry.location.length)
                enc.uint(entry.refcount)
            return enc.done()

    @classmethod
    def decode(cls, data: bytes) -> "FingerprintIndex":
        dec = Decoder(data)
        index = cls()
        for _ in range(dec.uint()):
            fingerprint = dec.blob()
            location = ChunkLocation(
                container_id=dec.uint(), offset=dec.uint(), length=dec.uint()
            )
            refcount = dec.uint()
            index._entries[fingerprint] = _IndexEntry(
                location=location, refcount=refcount
            )
        dec.expect_end()
        return index
