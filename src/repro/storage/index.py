"""The fingerprint index.

The REED server keeps a fingerprint index tracking every trimmed package
uploaded to the cloud (Section III-A): a given fingerprint maps to the
container holding its bytes, plus a reference count so space can be
reclaimed when the last file referencing a chunk is deleted.

The index also maintains per-container byte accounting: live bytes
(chunks still referenced) and dead bytes (chunks released but stranded
in a partially-live container).  The compaction GC reads that accounting
to pick rewrite candidates and calls :meth:`relocate_many` to move
surviving chunks' locations atomically under the index lock.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.util.codec import Decoder, Encoder
from repro.util.errors import NotFoundError, StorageError


@dataclass(frozen=True)
class ChunkLocation:
    """Where a chunk's bytes live: a container and a slice within it."""

    container_id: int
    offset: int
    length: int


@dataclass
class _IndexEntry:
    location: ChunkLocation
    refcount: int


@dataclass
class ContainerUsage:
    """Byte accounting for one container, maintained by the index."""

    live_bytes: int = 0
    dead_bytes: int = 0
    live_chunks: int = 0

    @property
    def dead_ratio(self) -> float:
        """Fraction of accounted bytes that are garbage."""
        total = self.live_bytes + self.dead_bytes
        return self.dead_bytes / total if total else 0.0


class FingerprintIndex:
    """Thread-safe fingerprint → (location, refcount) map.

    ``lookup``/``contains`` are the dedup test on the upload path;
    ``add``/``addref``/``release`` maintain reference counts as file
    recipes are stored and deleted.
    """

    def __init__(self) -> None:
        self._entries: dict[bytes, _IndexEntry] = {}
        self._usage: dict[int, ContainerUsage] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def contains(self, fingerprint: bytes) -> bool:
        with self._lock:
            return fingerprint in self._entries

    def lookup(self, fingerprint: bytes) -> ChunkLocation:
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            return entry.location

    def refcount(self, fingerprint: bytes) -> int:
        with self._lock:
            entry = self._entries.get(fingerprint)
            return entry.refcount if entry else 0

    def _usage_locked(self, container_id: int) -> ContainerUsage:
        usage = self._usage.get(container_id)
        if usage is None:
            usage = self._usage[container_id] = ContainerUsage()
        return usage

    def add(self, fingerprint: bytes, location: ChunkLocation) -> None:
        """Register a newly stored chunk with refcount 1."""
        with self._lock:
            if fingerprint in self._entries:
                raise StorageError(
                    f"fingerprint {fingerprint.hex()} already indexed"
                )
            self._entries[fingerprint] = _IndexEntry(location=location, refcount=1)
            usage = self._usage_locked(location.container_id)
            usage.live_bytes += location.length
            usage.live_chunks += 1

    def addref(self, fingerprint: bytes, count: int = 1) -> None:
        """Count ``count`` more references to an existing chunk.

        ``count`` > 1 lets the repair path replay a source replica's
        reference count onto a restored copy in one call.
        """
        if count < 1:
            raise StorageError("reference count delta must be positive")
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            entry.refcount += count

    def release(self, fingerprint: bytes) -> bool:
        """Drop one reference; returns True when the chunk became garbage."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                raise NotFoundError(f"fingerprint {fingerprint.hex()} not indexed")
            entry.refcount -= 1
            if entry.refcount > 0:
                return False
            del self._entries[fingerprint]
            usage = self._usage_locked(entry.location.container_id)
            usage.live_bytes -= entry.location.length
            usage.live_chunks -= 1
            usage.dead_bytes += entry.location.length
            return True

    def fingerprints(self) -> list[bytes]:
        with self._lock:
            return list(self._entries)

    # -- container accounting ----------------------------------------------

    def container_usage(self) -> dict[int, ContainerUsage]:
        """Per-container live/dead byte accounting (a snapshot copy)."""
        with self._lock:
            return {
                cid: ContainerUsage(u.live_bytes, u.dead_bytes, u.live_chunks)
                for cid, u in self._usage.items()
            }

    def usage_for(self, container_id: int) -> ContainerUsage:
        """One container's accounting (a copy; zeros when untracked)."""
        with self._lock:
            usage = self._usage.get(container_id)
            if usage is None:
                return ContainerUsage()
            return ContainerUsage(
                usage.live_bytes, usage.dead_bytes, usage.live_chunks
            )

    def record_dead(self, container_id: int, nbytes: int) -> None:
        """Account bytes known dead from outside the index's own view —
        the boot-time reconciliation between a restored index and the
        actual container payload sizes in the backend."""
        if nbytes <= 0:
            return
        with self._lock:
            self._usage_locked(container_id).dead_bytes += nbytes

    def clear_container(self, container_id: int) -> None:
        """Forget a deleted container's accounting."""
        with self._lock:
            self._usage.pop(container_id, None)

    def entries_in_container(
        self, container_id: int
    ) -> list[tuple[bytes, ChunkLocation]]:
        """Live (fingerprint, location) pairs stored in one container."""
        with self._lock:
            return [
                (fp, entry.location)
                for fp, entry in self._entries.items()
                if entry.location.container_id == container_id
            ]

    def relocate_many(
        self, moves: list[tuple[bytes, ChunkLocation, ChunkLocation]]
    ) -> int:
        """Atomically repoint chunks at their compacted copies.

        Each move is ``(fingerprint, expected_old, new)``; a move only
        lands if the entry still points at ``expected_old`` (a chunk
        released or already relocated since the GC copied it is skipped,
        and its copy is accounted dead in the new container so a later
        pass can reclaim it).  Returns the number of moves applied.
        """
        applied = 0
        with self._lock:
            for fingerprint, expected_old, new in moves:
                entry = self._entries.get(fingerprint)
                if entry is None or entry.location != expected_old:
                    # The copy we wrote is unreachable garbage.
                    self._usage_locked(new.container_id).dead_bytes += new.length
                    continue
                entry.location = new
                old_usage = self._usage_locked(expected_old.container_id)
                old_usage.live_bytes -= expected_old.length
                old_usage.live_chunks -= 1
                new_usage = self._usage_locked(new.container_id)
                new_usage.live_bytes += new.length
                new_usage.live_chunks += 1
                applied += 1
        return applied

    # -- persistence -------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize the index (stored alongside containers for restart)."""
        with self._lock:
            enc = Encoder().uint(len(self._entries))
            for fingerprint, entry in self._entries.items():
                enc.blob(fingerprint)
                enc.uint(entry.location.container_id)
                enc.uint(entry.location.offset)
                enc.uint(entry.location.length)
                enc.uint(entry.refcount)
            return enc.done()

    @classmethod
    def decode(cls, data: bytes) -> "FingerprintIndex":
        dec = Decoder(data)
        index = cls()
        for _ in range(dec.uint()):
            fingerprint = dec.blob()
            location = ChunkLocation(
                container_id=dec.uint(), offset=dec.uint(), length=dec.uint()
            )
            refcount = dec.uint()
            index._entries[fingerprint] = _IndexEntry(
                location=location, refcount=refcount
            )
            usage = index._usage_locked(location.container_id)
            usage.live_bytes += location.length
            usage.live_chunks += 1
        dec.expect_end()
        return index
