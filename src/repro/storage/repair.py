"""Replica repair and ring rebalancing for replicated deployments.

Replication (``replicas`` > 1 on :class:`~repro.storage.sharding.ShardedDataStore`
or :class:`~repro.core.system.ShardedStorageService`) keeps a write
available through node failures, but leaves two kinds of debt behind:

* **under-replication** — a chunk written at quorum while one of its
  owners was down has fewer than R live copies, and a node that lost a
  disk comes back empty;
* **misplacement** — after a join/leave, ~1/N of the keyspace has new
  owners that do not hold their keys yet.

:class:`ReplicaRepairer` pays the first debt: it scans every node's
inventory (the ``chunk_list``/``recipe_list``/``stub_list`` surface),
compares it against ring ownership, and re-replicates anything missing
from an owner, copying from any intact holder.  Corruption detection
reuses :func:`repro.storage.fsck.fsck` when a node's
:class:`~repro.storage.datastore.DataStore` is directly reachable, and
falls back to audit-style re-hashing of fetched replicas otherwise
(the same integrity check :mod:`repro.storage.audit` performs).

:func:`rebalance` pays the second: given the ring as it was *before* a
membership change, it migrates exactly the keys whose ownership moved —
the minimal-movement property of consistent hashing means that is ~1/N
of the keyspace, not a full reshuffle.

Progress is reported through :mod:`repro.obs`:

* ``replica_repairs_total`` — replica copies restored by the repairer,
* ``replicas_missing`` — gauge: (key, owner) pairs still lacking a copy
  after the latest scan (0 when fully replicated),
* ``ring_keys_moved_total`` — keys migrated by :func:`rebalance`.

Deletes are *not* repaired (a delete that missed a down node resurfaces
when that node returns; full tombstoning is out of scope, matching the
garbage-collection item on the roadmap).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.crypto.hashing import fingerprint as _fingerprint
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.fsck import fsck
from repro.util.errors import ConfigurationError, NotFoundError, ProtocolError

#: Chunk copies per batched transfer (one ``get_many``/``put_many`` pair).
REPAIR_BATCH = 128

#: Exceptions that mean "the node, not the request, failed" — a node
#: raising one mid-scan is marked down and skipped for the rest of the
#: pass (same classification the client-side router uses).
_TRANSPORT_FAILURES = (ProtocolError, OSError)


def _replay_refcounts(store, source: str, target: str, batch: list[bytes]) -> None:
    """Clone the source replica's reference counts onto fresh copies.

    ``put`` lands a restored chunk with refcount 1 regardless of how
    many files reference it; without the replay the first file delete
    would garbage-collect the restored replica while other files still
    point at it.  Stores lacking the refcount surface skip the replay —
    the copied bytes are still correct, only delete bookkeeping degrades.
    """
    refcounts = getattr(store, "node_refcounts", None)
    addref = getattr(store, "node_addref_many", None)
    if refcounts is None or addref is None:
        return
    counts = refcounts(source, batch)
    extra = [(fp, count - 1) for fp, count in zip(batch, counts) if count > 1]
    if extra:
        addref(target, extra)


@dataclass
class RepairReport:
    """Result of one repair scan."""

    nodes_scanned: int = 0
    #: Nodes revived by the pre-scan probe (previously marked down).
    revived_nodes: list[str] = field(default_factory=list)
    #: Nodes that failed mid-scan and were excluded from this pass
    #: (transport failures are also marked down on the ring).
    failed_nodes: list[str] = field(default_factory=list)
    chunks_checked: int = 0
    #: (chunk, owner) pairs found lacking a replica before repair.
    missing_replicas: int = 0
    #: Replicas whose stored bytes failed their integrity check.
    corrupt_replicas: int = 0
    chunks_repaired: int = 0
    recipes_repaired: int = 0
    stubs_repaired: int = 0
    #: (key, owner) pairs that could not be restored — no intact holder
    #: or the copy itself failed.  Nonzero means data is at risk.
    unrepaired: int = 0

    @property
    def repairs(self) -> int:
        return self.chunks_repaired + self.recipes_repaired + self.stubs_repaired


@dataclass
class RebalanceReport:
    """Result of one post-membership-change migration."""

    keys_checked: int = 0
    #: Keys whose ring ownership changed relative to the old ring.
    keys_moved: int = 0
    copies_made: int = 0


class ReplicaRepairer:
    """Scan-and-repair engine over a replicated sharded store.

    Works against anything exposing the per-node repair surface
    (``ring``, ``replicas``, ``node_ids``, ``node_chunk_list``,
    ``node_has_many``, ``node_get_many``, ``node_put_many``, the
    recipe/stub equivalents, and optionally
    ``node_refcounts``/``node_addref_many`` for reference-count
    replay) — both the in-process
    :class:`~repro.storage.sharding.ShardedDataStore` and the RPC-backed
    :class:`~repro.core.system.ShardedStorageService`.
    """

    def __init__(
        self,
        store,
        metrics: MetricsRegistry | None = None,
        verify_hashes: bool = False,
    ) -> None:
        if getattr(store, "ring", None) is None:
            raise ConfigurationError(
                "repairer needs a ring-placed store (ShardedDataStore or "
                "ShardedStorageService)"
            )
        self.store = store
        self.verify_hashes = verify_hashes
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_repairs = self.metrics.counter(
            "replica_repairs_total",
            "Replica copies restored by the repair daemon.",
        )
        self._m_missing = self.metrics.gauge(
            "replicas_missing",
            "(key, owner) pairs lacking a replica after the latest scan.",
        )
        self._m_scans = self.metrics.counter(
            "repair_scans_total",
            "Repair scans completed.",
        )

    # -- inventory --------------------------------------------------------------

    def _live_nodes(self) -> list[str]:
        return [
            node
            for node in self.store.node_ids()
            if self.store.ring.is_up(node)
        ]

    def _corrupt_on(self, node: str, fingerprints: list[bytes]) -> set[bytes]:
        """Integrity-check one node's chunks.

        Prefers a real :func:`fsck` pass (index-vs-container cross-check)
        when the node's store is in-process; over RPC it re-hashes the
        fetched replicas, which is the audit module's detection primitive.
        """
        node_store = getattr(self.store, "node_store", None)
        if node_store is not None:
            try:
                return set(fsck(node_store(node), verify_hashes=True).corrupt)
            except ConfigurationError:
                pass
        corrupt: set[bytes] = set()
        for start in range(0, len(fingerprints), REPAIR_BATCH):
            batch = fingerprints[start : start + REPAIR_BATCH]
            try:
                blobs = self.store.node_get_many(node, batch)
            except NotFoundError:
                # Indexed but unreadable: every chunk of the batch is
                # suspect; re-check one by one.
                for fp in batch:
                    try:
                        blob = self.store.node_get_many(node, [fp])[0]
                    except NotFoundError:
                        corrupt.add(fp)
                        continue
                    if _fingerprint(blob) != fp:
                        corrupt.add(fp)
                continue
            for fp, blob in zip(batch, blobs):
                if _fingerprint(blob) != fp:
                    corrupt.add(fp)
        return corrupt

    def _purge_corrupt(self, node: str, fingerprints: set[bytes]) -> set[bytes]:
        """Drop corrupt replicas so a fresh copy can land.

        ``put`` deduplicates by fingerprint, so a corrupt-but-indexed
        chunk must leave the index before re-replication overwrites it.
        Only possible with direct store access; over RPC the corrupt
        replicas are reported but kept (the read path already routes
        around them via fallback).  Returns the fingerprints purged.
        """
        node_store = getattr(self.store, "node_store", None)
        if node_store is None:
            return set()
        store = node_store(node)
        purged: set[bytes] = set()
        for fp in fingerprints:
            try:
                while store.has_chunk(fp):
                    store.release_chunk(fp)
            except NotFoundError:
                pass
            purged.add(fp)
        return purged

    def _exclude_node(self, node: str, exc: Exception, report: RepairReport) -> None:
        """Drop a node that failed mid-scan from the rest of this pass.

        A transport failure also marks it down on the ring (matching
        the client router's classification) so it is neither counted as
        a lacking owner nor targeted for copies until a later probe
        revives it; the next pass retries either way.
        """
        report.failed_nodes.append(node)
        if isinstance(exc, _TRANSPORT_FAILURES):
            mark_down = getattr(self.store, "mark_down", None)
            if mark_down is not None and self.store.ring.is_up(node):
                mark_down(node)

    def _owners_of(self, key, failed: set[str]) -> list[str]:
        return [
            node
            for node in self.store.ring.preference(key, self.store.replicas)
            if self.store.ring.is_up(node) and node not in failed
        ]

    # -- the scan ---------------------------------------------------------------

    def run_once(self) -> RepairReport:
        """One full scan-and-repair pass over chunks, recipes, and stubs.

        A node failing mid-scan (e.g. dying between the liveness probe
        and its inventory read) is excluded from the pass instead of
        aborting it — see :meth:`_exclude_node`.
        """
        report = RepairReport()
        probe = getattr(self.store, "probe_nodes", None)
        if probe is not None:
            report.revived_nodes = probe()

        # Chunk inventory: fingerprint -> nodes holding an intact copy.
        holders: dict[bytes, set[str]] = {}
        live: list[str] = []
        for node in self._live_nodes():
            try:
                inventory = self.store.node_chunk_list(node)
                corrupt = (
                    self._corrupt_on(node, inventory)
                    if self.verify_hashes
                    else set()
                )
            except Exception as exc:  # noqa: BLE001 - node died mid-scan
                self._exclude_node(node, exc, report)
                continue
            live.append(node)
            if corrupt:
                report.corrupt_replicas += len(corrupt)
                self._purge_corrupt(node, corrupt)
            for fp in inventory:
                if fp not in corrupt:
                    holders.setdefault(fp, set()).add(node)
            for fp in corrupt:
                holders.setdefault(fp, set())
        report.nodes_scanned = len(live)
        report.chunks_checked = len(holders)
        failed = set(report.failed_nodes)

        # Plan: target node -> source node -> fingerprints to copy.
        plans: dict[str, dict[str, list[bytes]]] = {}
        for fp, holding in holders.items():
            owners = self._owners_of(fp, failed)
            lacking = [node for node in owners if node not in holding]
            if not lacking:
                continue
            report.missing_replicas += len(lacking)
            if not holding:
                report.unrepaired += len(lacking)
                continue
            source = min(holding)  # deterministic pick
            for target in lacking:
                plans.setdefault(target, {}).setdefault(source, []).append(fp)

        for target, sources in plans.items():
            for source, fps in sources.items():
                for start in range(0, len(fps), REPAIR_BATCH):
                    batch = fps[start : start + REPAIR_BATCH]
                    try:
                        blobs = self.store.node_get_many(source, batch)
                        self.store.node_put_many(
                            target, list(zip(batch, blobs))
                        )
                        _replay_refcounts(self.store, source, target, batch)
                    except Exception:  # noqa: BLE001 - keep scanning
                        report.unrepaired += len(batch)
                        continue
                    report.chunks_repaired += len(batch)
                    self._m_repairs.inc(len(batch))

        report.recipes_repaired = self._repair_named(
            live,
            self.store.node_recipe_list,
            self.store.node_recipe_get,
            self.store.node_recipe_put,
            report,
        )
        report.stubs_repaired = self._repair_named(
            live,
            self.store.node_stub_list,
            self.store.node_stub_get,
            self.store.node_stub_put,
            report,
        )
        self._m_missing.set(float(report.unrepaired))
        self._m_scans.inc()
        return report

    def _repair_named(self, live, list_fn, get_fn, put_fn, report) -> int:
        """Re-replicate one named-blob namespace (recipes or stub files)."""
        holders: dict[str, set[str]] = {}
        for node in live:
            if node in report.failed_nodes:
                continue
            try:
                listing = list_fn(node)
            except Exception as exc:  # noqa: BLE001 - node died mid-scan
                self._exclude_node(node, exc, report)
                continue
            for file_id in listing:
                holders.setdefault(file_id, set()).add(node)
        failed = set(report.failed_nodes)
        repaired = 0
        for file_id, holding in holders.items():
            owners = self._owners_of(file_id, failed)
            lacking = [node for node in owners if node not in holding]
            if not lacking:
                continue
            report.missing_replicas += len(lacking)
            try:
                data = get_fn(min(holding), file_id)
            except Exception:  # noqa: BLE001 - keep scanning
                report.unrepaired += len(lacking)
                continue
            for target in lacking:
                try:
                    put_fn(target, file_id, data)
                except Exception:  # noqa: BLE001 - keep scanning
                    report.unrepaired += 1
                    continue
                repaired += 1
                self._m_repairs.inc()
        return repaired


class RepairDaemon:
    """Background thread running :meth:`ReplicaRepairer.run_once` on an
    interval — the deployment's self-healing loop.

    Use as a context manager or call :meth:`start`/:meth:`stop`.
    :meth:`run_now` forces an immediate pass (tests, post-restart).
    """

    def __init__(
        self,
        repairer: ReplicaRepairer,
        interval: float = 30.0,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("repair interval must be positive")
        self.repairer = repairer
        self.interval = interval
        self.last_report: RepairReport | None = None
        #: Exception that aborted the most recent pass (None after a
        #: pass completes) — the daemon's health surface.
        self.last_error: Exception | None = None
        self.passes = 0
        self.failed_passes = 0
        self._m_scan_failures = repairer.metrics.counter(
            "repair_scan_failures_total",
            "Repair passes aborted by an unexpected error.",
        )
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def _loop(self) -> None:
        # A failing pass must never kill the thread: a daemon that died
        # silently looks healthy while the deployment stops self-healing.
        # The error is recorded and the next interval retries.
        while not self._stop.is_set():
            try:
                self.run_now()
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                self.last_error = exc
                self.failed_passes += 1
                self._m_scan_failures.inc()
            self._wake.wait(self.interval)
            self._wake.clear()

    def run_now(self) -> RepairReport:
        with self._lock:
            report = self.repairer.run_once()
            self.last_report = report
            self.last_error = None
            self.passes += 1
            return report

    def start(self) -> None:
        if self._thread is not None:
            raise ConfigurationError("repair daemon already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="reed-repair", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        self._wake.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def __enter__(self) -> RepairDaemon:
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def rebalance(
    store,
    old_ring,
    metrics: MetricsRegistry | None = None,
) -> RebalanceReport:
    """Migrate keys whose ring ownership changed between two rings.

    Call with a :meth:`~repro.storage.sharding.HashRing.copy` snapshot
    taken *before* ``add_shard``/``remove_shard`` (or the service-level
    equivalents).  Only keys whose preference list changed are copied —
    ~1/N of the keyspace per single-node membership change — and copies
    land on the new owners without deleting the old replicas (space is
    reclaimed by garbage collection, not here, so a mid-migration crash
    never loses the only copy).
    """
    registry = metrics if metrics is not None else default_registry()
    moved_total = registry.counter(
        "ring_keys_moved_total",
        "Keys migrated to new ring owners by rebalancing.",
    )
    report = RebalanceReport()
    live = [node for node in store.node_ids() if store.ring.is_up(node)]

    # Chunks.
    holders: dict[bytes, set[str]] = {}
    for node in live:
        for fp in store.node_chunk_list(node):
            holders.setdefault(fp, set()).add(node)
    plans: dict[str, dict[str, list[bytes]]] = {}
    for fp, holding in holders.items():
        report.keys_checked += 1
        old_owners = set(old_ring.preference(fp, store.replicas))
        new_owners = set(store.ring.preference(fp, store.replicas))
        if new_owners == old_owners:
            continue
        report.keys_moved += 1
        moved_total.inc()
        targets = [
            node
            for node in new_owners - holding
            if store.ring.is_up(node)
        ]
        if not targets or not holding:
            continue
        source = min(holding)
        for target in targets:
            plans.setdefault(target, {}).setdefault(source, []).append(fp)
    for target, sources in plans.items():
        for source, fps in sources.items():
            for start in range(0, len(fps), REPAIR_BATCH):
                batch = fps[start : start + REPAIR_BATCH]
                blobs = store.node_get_many(source, batch)
                store.node_put_many(target, list(zip(batch, blobs)))
                _replay_refcounts(store, source, target, batch)
                report.copies_made += len(batch)

    # Recipes and stub files.
    for list_fn, get_fn, put_fn in (
        (store.node_recipe_list, store.node_recipe_get, store.node_recipe_put),
        (store.node_stub_list, store.node_stub_get, store.node_stub_put),
    ):
        named: dict[str, set[str]] = {}
        for node in live:
            for file_id in list_fn(node):
                named.setdefault(file_id, set()).add(node)
        for file_id, holding in named.items():
            report.keys_checked += 1
            old_owners = set(old_ring.preference(file_id, store.replicas))
            new_owners = set(store.ring.preference(file_id, store.replicas))
            if new_owners == old_owners:
                continue
            report.keys_moved += 1
            moved_total.inc()
            targets = [
                node
                for node in new_owners - holding
                if store.ring.is_up(node)
            ]
            if not targets or not holding:
                continue
            data = get_fn(min(holding), file_id)
            for target in targets:
                put_fn(target, file_id, data)
                report.copies_made += 1
    return report
