"""The data store: deduplicated chunk storage plus file data.

One REED data-store server manages (Section V-A):

* unique **trimmed packages**, deduplicated via the fingerprint index and
  batched into 4 MB containers;
* **file recipes**;
* encrypted **stub files**; and
* the associated accounting (logical vs physical vs stub bytes) that
  Experiment B.1 reports.

Stub files are *not* deduplicated: they are encrypted under renewable
file keys, so identical chunks in different files still have distinct
encrypted stubs (the storage-overhead experiment measures exactly this).

Restart support: ``flush()`` snapshots the fingerprint index into the
backend next to the containers, and a store constructed over a backend
that holds a snapshot reloads it — so a rebooted data server resumes
with its dedup state (and per-container dead-space accounting) intact.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.backend import BlobBackend, MemoryBackend
from repro.storage.container import DEFAULT_CONTAINER_BYTES, ContainerStore
from repro.storage.index import FingerprintIndex
from repro.util.errors import NotFoundError

_RECIPE_PREFIX = "recipe/"
_STUB_PREFIX = "stub/"

#: Backend blob holding the fingerprint-index snapshot across restarts.
INDEX_BLOB = "meta/fingerprint-index"


@dataclass
class DataStoreStats:
    """Byte accounting in the terms of Experiment B.1."""

    #: Bytes of trimmed packages received, before deduplication.
    logical_bytes: int = 0
    #: Bytes of unique trimmed packages actually stored.
    physical_bytes: int = 0
    #: Bytes of encrypted stub files stored.
    stub_bytes: int = 0
    #: Chunks received / unique chunks stored.
    chunks_received: int = 0
    chunks_stored: int = 0
    #: Uncompressed payload vs on-disk bytes of sealed containers.
    container_payload_bytes: int = 0
    container_compressed_bytes: int = 0

    @property
    def dedup_saving(self) -> float:
        """Fraction of logical data eliminated by deduplication."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.physical_bytes / self.logical_bytes

    @property
    def total_saving(self) -> float:
        """Saving counting stub overhead against the logical data."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - (self.physical_bytes + self.stub_bytes) / self.logical_bytes

    @property
    def compression_ratio(self) -> float:
        """Uncompressed over on-disk sealed-container bytes (>= 1 when
        container compression wins)."""
        if self.container_compressed_bytes == 0:
            return 1.0
        return self.container_payload_bytes / self.container_compressed_bytes


class DataStore:
    """A single data-store server's storage engine."""

    def __init__(
        self,
        backend: BlobBackend | None = None,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.metrics = metrics if metrics is not None else default_registry()
        self.index = FingerprintIndex()
        self.containers = ContainerStore(
            self.backend, container_bytes, metrics=self.metrics
        )
        self._stats = DataStoreStats()
        self._lock = threading.Lock()
        self._m_read_amp = self.metrics.gauge(
            "container_read_amplification",
            "Container fetches per chunk served by the last batch read.",
        )
        self._m_dead_ratio = self.metrics.gauge(
            "dead_space_ratio",
            "Dead over total accounted container bytes on this store.",
        )
        self.load_index_snapshot()

    @property
    def stats(self) -> DataStoreStats:
        """Byte accounting, with container-compression fields refreshed."""
        self._stats.container_payload_bytes = self.containers.sealed_payload_bytes()
        self._stats.container_compressed_bytes = self.containers.compressed_bytes()
        return self._stats

    # -- chunks --------------------------------------------------------------

    def has_chunk(self, fingerprint: bytes) -> bool:
        return self.index.contains(fingerprint)

    def put_chunk(self, fingerprint: bytes, data: bytes) -> bool:
        """Store a trimmed package, deduplicating by fingerprint.

        Returns True when the chunk was new (bytes were stored) and False
        on a dedup hit (only a reference was added).
        """
        with self._lock:
            self._stats.logical_bytes += len(data)
            self._stats.chunks_received += 1
            if self.index.contains(fingerprint):
                self.index.addref(fingerprint)
                return False
            location = self.containers.append(data)
            self.index.add(fingerprint, location)
            self._stats.physical_bytes += len(data)
            self._stats.chunks_stored += 1
            return True

    def has_many(self, fingerprints: list[bytes]) -> list[bool]:
        """Batch existence check (order-preserving) for one multi-chunk
        message of the batched upload protocol."""
        return [self.index.contains(fp) for fp in fingerprints]

    def put_many(self, chunks: list[tuple[bytes, bytes]]) -> list[bool]:
        """Store many (fingerprint, data) pairs; per-item "was new" status.

        Equivalent to calling :meth:`put_chunk` in order — container
        layout and reference counts are byte-identical to the per-chunk
        path — but lets a whole batch message land with one call.
        """
        return [self.put_chunk(fp, data) for fp, data in chunks]

    def get_chunk(self, fingerprint: bytes) -> bytes:
        location = self.index.lookup(fingerprint)
        while True:
            try:
                return self.containers.read(location)
            except NotFoundError:
                # The chunk may have been relocated by a concurrent
                # compaction between the lookup and the container read;
                # retry as long as the lookup keeps resolving somewhere
                # new, and raise once the location is stable (genuinely
                # missing bytes, not a relocation race).
                fresh = self.index.lookup(fingerprint)
                if fresh == location:
                    raise
                location = fresh

    def list_chunks(self) -> list[bytes]:
        """Every indexed fingerprint — the repair daemon's inventory scan."""
        return list(self.index.fingerprints())

    def get_many(self, fingerprints: list[bytes]) -> list[bytes]:
        """Read many chunks in order — one multi-chunk message of the
        batched download protocol.  Raises on the first missing
        fingerprint, like per-chunk reads.

        Locations are grouped by container and each needed container is
        fetched exactly once (``ContainerStore.read_many``); the fetch
        count per chunk served is published as
        ``container_read_amplification``.
        """
        if not fingerprints:
            return []
        fetches_before = self.containers.container_fetches
        locations = [self.index.lookup(fp) for fp in fingerprints]
        while True:
            try:
                chunks = self.containers.read_many(locations)
                break
            except NotFoundError:
                # Concurrent compaction may have relocated some chunks;
                # re-resolve and retry until the locations are stable
                # (each retry is justified by an actual relocation).
                fresh = [self.index.lookup(fp) for fp in fingerprints]
                if fresh == locations:
                    raise
                locations = fresh
        fetched = self.containers.container_fetches - fetches_before
        self._m_read_amp.set(fetched / len(fingerprints))
        return chunks

    def refcount_many(self, fingerprints: list[bytes]) -> list[int]:
        """Reference count per fingerprint (0 when not indexed).

        The repair daemon reads these so a re-replicated chunk can be
        restored with the reference count of the copy it was cloned
        from, not a bare refcount of 1.
        """
        return [self.index.refcount(fp) for fp in fingerprints]

    def addref_many(self, refs: list[tuple[bytes, int]]) -> None:
        """Add ``count`` extra references per ``(fingerprint, count)`` pair.

        Raises :class:`~repro.util.errors.NotFoundError` on a
        fingerprint this store does not index and
        :class:`~repro.util.errors.StorageError` on a non-positive
        count — the same contract as ``index.addref``.
        """
        for fp, count in refs:
            self.index.addref(fp, count)

    def release_chunk(self, fingerprint: bytes) -> None:
        """Drop one reference; reclaims container space when possible.

        A sealed container whose chunks are all garbage is deleted
        outright; partially-live containers accumulate dead bytes in the
        index's per-container accounting until the compaction GC
        rewrites their survivors (``storage/gc.py``).
        """
        with self._lock:
            location = self.index.lookup(fingerprint)
            if not self.index.release(fingerprint):
                return
            self._stats.physical_bytes -= location.length
            self._stats.chunks_stored -= 1
            cid = location.container_id
            if self.index.usage_for(cid).live_chunks == 0 and (
                cid != self.containers.open_container_id
                and self.containers.has_container(cid)
            ):
                self.containers.delete_container(cid)
                self.index.clear_container(cid)
            self._publish_dead_space_locked()

    def dead_space(self) -> tuple[int, int, float]:
        """(live_bytes, dead_bytes, dead_ratio) across all containers."""
        live = 0
        dead = 0
        for usage in self.index.container_usage().values():
            live += usage.live_bytes
            dead += usage.dead_bytes
        total = live + dead
        ratio = dead / total if total else 0.0
        self._m_dead_ratio.set(ratio)
        return live, dead, ratio

    def _publish_dead_space_locked(self) -> None:
        self.dead_space()

    def flush(self) -> None:
        """Seal the open container and snapshot the fingerprint index, so
        a restart over the same backend resumes with dedup state intact."""
        self.containers.flush()
        self.backend.put(INDEX_BLOB, self.index.encode())

    # -- restart support -----------------------------------------------------

    def load_index_snapshot(self) -> bool:
        """Restore a snapshotted index; returns False if none exists.

        Rebuilds the derived accounting the snapshot does not carry:
        physical bytes and chunk counts from the entries, stub bytes
        from the backend, and per-container dead bytes by reconciling
        each sealed container's payload length against its live bytes.
        """
        if not self.backend.exists(INDEX_BLOB):
            return False
        self.index = FingerprintIndex.decode(self.backend.get(INDEX_BLOB))
        physical = 0
        chunks = 0
        for fp in self.index.fingerprints():
            location = self.index.lookup(fp)
            physical += location.length
            chunks += 1
        self._stats.physical_bytes = physical
        self._stats.chunks_stored = chunks
        self._stats.stub_bytes = self.backend.total_bytes(_STUB_PREFIX)
        for cid in self.containers.sealed_container_ids():
            payload = self.containers.payload_length(cid)
            live = self.index.usage_for(cid).live_bytes
            self.index.record_dead(cid, payload - live)
        self.dead_space()
        return True

    # -- recipes ---------------------------------------------------------------

    def put_recipe(self, file_id: str, data: bytes) -> None:
        self.backend.put(_RECIPE_PREFIX + file_id, data)

    def get_recipe(self, file_id: str) -> bytes:
        return self.backend.get(_RECIPE_PREFIX + file_id)

    def delete_recipe(self, file_id: str) -> None:
        self.backend.delete(_RECIPE_PREFIX + file_id)

    def has_recipe(self, file_id: str) -> bool:
        return self.backend.exists(_RECIPE_PREFIX + file_id)

    def list_recipes(self) -> list[str]:
        return [
            name[len(_RECIPE_PREFIX):] for name in self.backend.list(_RECIPE_PREFIX)
        ]

    # -- stub files --------------------------------------------------------------

    def put_stub_file(self, file_id: str, data: bytes) -> None:
        """Store (or replace, on rekey) a file's encrypted stub file."""
        name = _STUB_PREFIX + file_id
        with self._lock:
            if self.backend.exists(name):
                self._stats.stub_bytes -= self.backend.size(name)
            self.backend.put(name, data)
            self._stats.stub_bytes += len(data)

    def get_stub_file(self, file_id: str) -> bytes:
        return self.backend.get(_STUB_PREFIX + file_id)

    def list_stub_files(self) -> list[str]:
        return [
            name[len(_STUB_PREFIX):] for name in self.backend.list(_STUB_PREFIX)
        ]

    def delete_stub_file(self, file_id: str) -> None:
        name = _STUB_PREFIX + file_id
        with self._lock:
            if not self.backend.exists(name):
                raise NotFoundError(f"no stub file for {file_id!r}")
            self._stats.stub_bytes -= self.backend.size(name)
            self.backend.delete(name)
