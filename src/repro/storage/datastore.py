"""The data store: deduplicated chunk storage plus file data.

One REED data-store server manages (Section V-A):

* unique **trimmed packages**, deduplicated via the fingerprint index and
  batched into 4 MB containers;
* **file recipes**;
* encrypted **stub files**; and
* the associated accounting (logical vs physical vs stub bytes) that
  Experiment B.1 reports.

Stub files are *not* deduplicated: they are encrypted under renewable
file keys, so identical chunks in different files still have distinct
encrypted stubs (the storage-overhead experiment measures exactly this).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.storage.backend import BlobBackend, MemoryBackend
from repro.storage.container import DEFAULT_CONTAINER_BYTES, ContainerStore
from repro.storage.index import FingerprintIndex
from repro.util.errors import NotFoundError

_RECIPE_PREFIX = "recipe/"
_STUB_PREFIX = "stub/"


@dataclass
class DataStoreStats:
    """Byte accounting in the terms of Experiment B.1."""

    #: Bytes of trimmed packages received, before deduplication.
    logical_bytes: int = 0
    #: Bytes of unique trimmed packages actually stored.
    physical_bytes: int = 0
    #: Bytes of encrypted stub files stored.
    stub_bytes: int = 0
    #: Chunks received / unique chunks stored.
    chunks_received: int = 0
    chunks_stored: int = 0

    @property
    def dedup_saving(self) -> float:
        """Fraction of logical data eliminated by deduplication."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - self.physical_bytes / self.logical_bytes

    @property
    def total_saving(self) -> float:
        """Saving counting stub overhead against the logical data."""
        if self.logical_bytes == 0:
            return 0.0
        return 1.0 - (self.physical_bytes + self.stub_bytes) / self.logical_bytes


class DataStore:
    """A single data-store server's storage engine."""

    def __init__(
        self,
        backend: BlobBackend | None = None,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
    ) -> None:
        self.backend = backend if backend is not None else MemoryBackend()
        self.index = FingerprintIndex()
        self.containers = ContainerStore(self.backend, container_bytes)
        self.stats = DataStoreStats()
        self._container_live: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- chunks --------------------------------------------------------------

    def has_chunk(self, fingerprint: bytes) -> bool:
        return self.index.contains(fingerprint)

    def put_chunk(self, fingerprint: bytes, data: bytes) -> bool:
        """Store a trimmed package, deduplicating by fingerprint.

        Returns True when the chunk was new (bytes were stored) and False
        on a dedup hit (only a reference was added).
        """
        with self._lock:
            self.stats.logical_bytes += len(data)
            self.stats.chunks_received += 1
            if self.index.contains(fingerprint):
                self.index.addref(fingerprint)
                return False
            location = self.containers.append(data)
            self.index.add(fingerprint, location)
            self.stats.physical_bytes += len(data)
            self.stats.chunks_stored += 1
            self._container_live[location.container_id] = (
                self._container_live.get(location.container_id, 0) + 1
            )
            return True

    def has_many(self, fingerprints: list[bytes]) -> list[bool]:
        """Batch existence check (order-preserving) for one multi-chunk
        message of the batched upload protocol."""
        return [self.index.contains(fp) for fp in fingerprints]

    def put_many(self, chunks: list[tuple[bytes, bytes]]) -> list[bool]:
        """Store many (fingerprint, data) pairs; per-item "was new" status.

        Equivalent to calling :meth:`put_chunk` in order — container
        layout and reference counts are byte-identical to the per-chunk
        path — but lets a whole batch message land with one call.
        """
        return [self.put_chunk(fp, data) for fp, data in chunks]

    def get_chunk(self, fingerprint: bytes) -> bytes:
        return self.containers.read(self.index.lookup(fingerprint))

    def list_chunks(self) -> list[bytes]:
        """Every indexed fingerprint — the repair daemon's inventory scan."""
        return list(self.index.fingerprints())

    def get_many(self, fingerprints: list[bytes]) -> list[bytes]:
        """Read many chunks in order — one multi-chunk message of the
        batched download protocol.  Raises on the first missing
        fingerprint, like per-chunk reads."""
        return [self.get_chunk(fp) for fp in fingerprints]

    def refcount_many(self, fingerprints: list[bytes]) -> list[int]:
        """Reference count per fingerprint (0 when not indexed).

        The repair daemon reads these so a re-replicated chunk can be
        restored with the reference count of the copy it was cloned
        from, not a bare refcount of 1.
        """
        return [self.index.refcount(fp) for fp in fingerprints]

    def addref_many(self, refs: list[tuple[bytes, int]]) -> None:
        """Add ``count`` extra references per ``(fingerprint, count)`` pair.

        Raises :class:`~repro.util.errors.NotFoundError` on a
        fingerprint this store does not index.
        """
        for fp, count in refs:
            if count > 0:
                self.index.addref(fp, count)

    def release_chunk(self, fingerprint: bytes) -> None:
        """Drop one reference; reclaims container space when possible.

        A container whose chunks are all garbage is deleted outright —
        the simple grouped-reclamation GC the container layout affords.
        """
        with self._lock:
            location = self.index.lookup(fingerprint)
            if not self.index.release(fingerprint):
                return
            self.stats.physical_bytes -= location.length
            self.stats.chunks_stored -= 1
            cid = location.container_id
            live = self._container_live.get(cid, 0) - 1
            if live > 0:
                self._container_live[cid] = live
                return
            self._container_live.pop(cid, None)
            if self.backend.exists(f"container/{cid:012d}"):
                self.containers.delete_container(cid)

    def flush(self) -> None:
        self.containers.flush()

    # -- recipes ---------------------------------------------------------------

    def put_recipe(self, file_id: str, data: bytes) -> None:
        self.backend.put(_RECIPE_PREFIX + file_id, data)

    def get_recipe(self, file_id: str) -> bytes:
        return self.backend.get(_RECIPE_PREFIX + file_id)

    def delete_recipe(self, file_id: str) -> None:
        self.backend.delete(_RECIPE_PREFIX + file_id)

    def has_recipe(self, file_id: str) -> bool:
        return self.backend.exists(_RECIPE_PREFIX + file_id)

    def list_recipes(self) -> list[str]:
        return [
            name[len(_RECIPE_PREFIX):] for name in self.backend.list(_RECIPE_PREFIX)
        ]

    # -- stub files --------------------------------------------------------------

    def put_stub_file(self, file_id: str, data: bytes) -> None:
        """Store (or replace, on rekey) a file's encrypted stub file."""
        name = _STUB_PREFIX + file_id
        with self._lock:
            if self.backend.exists(name):
                self.stats.stub_bytes -= self.backend.size(name)
            self.backend.put(name, data)
            self.stats.stub_bytes += len(data)

    def get_stub_file(self, file_id: str) -> bytes:
        return self.backend.get(_STUB_PREFIX + file_id)

    def list_stub_files(self) -> list[str]:
        return [
            name[len(_STUB_PREFIX):] for name in self.backend.list(_STUB_PREFIX)
        ]

    def delete_stub_file(self, file_id: str) -> None:
        name = _STUB_PREFIX + file_id
        with self._lock:
            if not self.backend.exists(name):
                raise NotFoundError(f"no stub file for {file_id!r}")
            self.stats.stub_bytes -= self.backend.size(name)
            self.backend.delete(name)
