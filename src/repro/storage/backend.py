"""Blob storage backends.

The REED server persists containers, recipes, stub files, and key states
in a *storage backend* — S3 in the paper's deployment sketch, a local
disk in its evaluation (Section VI).  This module defines the minimal
key→blob interface and two implementations: an in-memory backend for
tests/experiments and a directory-backed backend for durability.
"""

from __future__ import annotations

import os
import threading
from abc import ABC, abstractmethod
from collections.abc import Iterator

from repro.util.errors import ConfigurationError, NotFoundError, StorageError


class BlobBackend(ABC):
    """A flat namespace of named immutable blobs."""

    @abstractmethod
    def put(self, name: str, data: bytes) -> None:
        """Store a blob (overwrites an existing blob of the same name)."""

    @abstractmethod
    def get(self, name: str) -> bytes:
        """Fetch a blob; raises :class:`NotFoundError` if absent."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove a blob; raises :class:`NotFoundError` if absent."""

    @abstractmethod
    def exists(self, name: str) -> bool: ...

    @abstractmethod
    def list(self, prefix: str = "") -> Iterator[str]:
        """Iterate blob names with the given prefix (sorted)."""

    @abstractmethod
    def size(self, name: str) -> int:
        """Size in bytes of a stored blob."""

    def total_bytes(self, prefix: str = "") -> int:
        """Total stored bytes under a prefix (used by the storage bench)."""
        return sum(self.size(name) for name in self.list(prefix))


class MemoryBackend(BlobBackend):
    """Dictionary-backed blob store (thread-safe)."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}
        self._lock = threading.Lock()

    def put(self, name: str, data: bytes) -> None:
        with self._lock:
            self._blobs[name] = bytes(data)

    def get(self, name: str) -> bytes:
        with self._lock:
            try:
                return self._blobs[name]
            except KeyError:
                raise NotFoundError(f"no blob named {name!r}") from None

    def delete(self, name: str) -> None:
        with self._lock:
            if name not in self._blobs:
                raise NotFoundError(f"no blob named {name!r}")
            del self._blobs[name]

    def exists(self, name: str) -> bool:
        with self._lock:
            return name in self._blobs

    def list(self, prefix: str = "") -> Iterator[str]:
        with self._lock:
            names = sorted(n for n in self._blobs if n.startswith(prefix))
        return iter(names)

    def size(self, name: str) -> int:
        with self._lock:
            try:
                return len(self._blobs[name])
            except KeyError:
                raise NotFoundError(f"no blob named {name!r}") from None


class DirectoryBackend(BlobBackend):
    """Filesystem-backed blob store; blob names map to files.

    Blob names may contain ``/`` which become subdirectories.  Writes go
    through a temporary file + rename so a crash never leaves a partial
    blob visible.
    """

    def __init__(self, root: str) -> None:
        self._root = os.path.abspath(root)
        os.makedirs(self._root, exist_ok=True)
        self._lock = threading.Lock()

    def _path(self, name: str) -> str:
        if not name or name.startswith("/") or ".." in name.split("/"):
            raise ConfigurationError(f"invalid blob name {name!r}")
        return os.path.join(self._root, name)

    def put(self, name: str, data: bytes) -> None:
        path = self._path(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with self._lock:
            try:
                with open(tmp, "wb") as handle:
                    handle.write(data)
                os.replace(tmp, path)
            except OSError as exc:
                raise StorageError(f"failed to store blob {name!r}: {exc}") from exc

    def get(self, name: str) -> bytes:
        path = self._path(name)
        try:
            with open(path, "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            raise NotFoundError(f"no blob named {name!r}") from None
        except OSError as exc:
            raise StorageError(f"failed to read blob {name!r}: {exc}") from exc

    def delete(self, name: str) -> None:
        path = self._path(name)
        try:
            os.remove(path)
        except FileNotFoundError:
            raise NotFoundError(f"no blob named {name!r}") from None
        except OSError as exc:
            raise StorageError(f"failed to delete blob {name!r}: {exc}") from exc

    def exists(self, name: str) -> bool:
        return os.path.isfile(self._path(name))

    def list(self, prefix: str = "") -> Iterator[str]:
        names = []
        for dirpath, _dirnames, filenames in os.walk(self._root):
            for filename in filenames:
                if filename.endswith(".tmp"):
                    continue
                full = os.path.join(dirpath, filename)
                name = os.path.relpath(full, self._root).replace(os.sep, "/")
                if name.startswith(prefix):
                    names.append(name)
        return iter(sorted(names))

    def size(self, name: str) -> int:
        path = self._path(name)
        try:
            return os.path.getsize(path)
        except FileNotFoundError:
            raise NotFoundError(f"no blob named {name!r}") from None
