"""Container batching for unique chunks.

Writing each trimmed package as its own object would swamp the backend
with small I/O; the REED server therefore batches unique chunks into
4 MB container units before storing them (Section V-B, "Batching").
Reads fetch a whole container and slice the requested chunk, with a small
LRU container cache — this is also where the download-fragmentation
effect in Experiment B.2 comes from: chunks of one file end up scattered
across many containers written by earlier backups.
"""

from __future__ import annotations

import threading

from repro.storage.backend import BlobBackend
from repro.storage.index import ChunkLocation
from repro.util.errors import ConfigurationError, NotFoundError
from repro.util.lru import LRUCache
from repro.util.units import MiB

#: Container capacity (paper Section V-B).
DEFAULT_CONTAINER_BYTES = 4 * MiB

#: Containers cached on the read path.
DEFAULT_READ_CACHE_CONTAINERS = 16

_PREFIX = "container/"


class ContainerStore:
    """Append-oriented chunk storage batched into fixed-size containers.

    ``append`` buffers chunk bytes in the open container and returns the
    location the chunk *will* occupy; ``flush`` seals the open container
    into the backend.  Locations are valid immediately — reads check the
    open container before the backend — so callers never wait for a
    flush to use a location.
    """

    def __init__(
        self,
        backend: BlobBackend,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        read_cache_containers: int = DEFAULT_READ_CACHE_CONTAINERS,
    ) -> None:
        if container_bytes <= 0:
            raise ConfigurationError("container size must be positive")
        self._backend = backend
        self._capacity = container_bytes
        self._lock = threading.Lock()
        self._open_id = self._next_container_id()
        self._open_buffer = bytearray()
        self._read_cache: LRUCache[int, bytes] = LRUCache(read_cache_containers)
        #: Number of sealed containers written (for stats/experiments).
        self.sealed_containers = 0
        #: Container fetches that missed the read cache.
        self.container_fetches = 0

    def _next_container_id(self) -> int:
        """Resume numbering after existing containers (restart support)."""
        highest = -1
        for name in self._backend.list(_PREFIX):
            try:
                highest = max(highest, int(name[len(_PREFIX):]))
            except ValueError:
                continue
        return highest + 1

    @staticmethod
    def _name(container_id: int) -> str:
        return f"{_PREFIX}{container_id:012d}"

    def append(self, data: bytes) -> ChunkLocation:
        """Buffer a chunk, sealing the open container when it fills."""
        if not data:
            raise ConfigurationError("cannot store an empty chunk")
        with self._lock:
            if self._open_buffer and len(self._open_buffer) + len(data) > self._capacity:
                self._seal_locked()
            location = ChunkLocation(
                container_id=self._open_id,
                offset=len(self._open_buffer),
                length=len(data),
            )
            self._open_buffer.extend(data)
            if len(self._open_buffer) >= self._capacity:
                self._seal_locked()
            return location

    def _seal_locked(self) -> None:
        if not self._open_buffer:
            return
        self._backend.put(self._name(self._open_id), bytes(self._open_buffer))
        self.sealed_containers += 1
        self._open_id += 1
        self._open_buffer = bytearray()

    def flush(self) -> None:
        """Seal the open container (called at the end of an upload batch)."""
        with self._lock:
            self._seal_locked()

    def read(self, location: ChunkLocation) -> bytes:
        """Fetch a chunk's bytes from its container."""
        with self._lock:
            if location.container_id == self._open_id:
                # Still buffered; serve from memory.
                end = location.offset + location.length
                if end > len(self._open_buffer):
                    raise NotFoundError("location beyond the open container")
                return bytes(self._open_buffer[location.offset : end])
        container = self._read_cache.get(location.container_id)
        if container is None:
            container = self._backend.get(self._name(location.container_id))
            self.container_fetches += 1
            self._read_cache.put(location.container_id, container)
        end = location.offset + location.length
        if end > len(container):
            raise NotFoundError("location beyond its container's size")
        return container[location.offset : end]

    def delete_container(self, container_id: int) -> None:
        """Drop a sealed container (garbage collection)."""
        self._read_cache.pop(container_id)
        self._backend.delete(self._name(container_id))

    def stored_bytes(self) -> int:
        """Bytes in sealed containers plus the open buffer."""
        with self._lock:
            buffered = len(self._open_buffer)
        return self._backend.total_bytes(_PREFIX) + buffered
