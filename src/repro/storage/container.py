"""Container batching for unique chunks.

Writing each trimmed package as its own object would swamp the backend
with small I/O; the REED server therefore batches unique chunks into
4 MB container units before storing them (Section V-B, "Batching").
Reads fetch a whole container and slice the requested chunk, with a small
LRU container cache — this is also where the download-fragmentation
effect in Experiment B.2 comes from: chunks of one file end up scattered
across many containers written by earlier backups.

Sealed containers carry a versioned header (magic, codec byte,
uncompressed length) and are zlib-compressed when that makes them
smaller; headerless blobs written by earlier versions remain readable.
Batch reads (`read_many`) fetch each distinct container exactly once,
with bounded concurrency, and fetches are single-flighted per container
id so concurrent readers never duplicate a backend fetch.
"""

from __future__ import annotations

import struct
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.backend import BlobBackend
from repro.storage.index import ChunkLocation
from repro.util.errors import ConfigurationError, NotFoundError, StorageError
from repro.util.lru import LRUCache
from repro.util.units import MiB

#: Container capacity (paper Section V-B).
DEFAULT_CONTAINER_BYTES = 4 * MiB

#: Containers cached on the read path.
DEFAULT_READ_CACHE_CONTAINERS = 16

#: Distinct containers fetched concurrently by one ``read_many`` call.
DEFAULT_FETCH_CONCURRENCY = 4

_PREFIX = "container/"

#: Versioned container header: magic, codec byte, big-endian uncompressed
#: payload length.  Blobs without the magic are legacy raw payloads.
_MAGIC = b"RCF1"
_HEADER = struct.Struct(">4sBQ")
CODEC_STORED = 0
CODEC_ZLIB = 1

#: zlib level 6 is the speed/ratio sweet spot for 4 MB containers.
_ZLIB_LEVEL = 6


def _encode_container(payload: bytes) -> bytes:
    """Frame a sealed payload, compressing when compression wins."""
    compressed = zlib.compress(payload, _ZLIB_LEVEL)
    if len(compressed) < len(payload):
        return _HEADER.pack(_MAGIC, CODEC_ZLIB, len(payload)) + compressed
    return _HEADER.pack(_MAGIC, CODEC_STORED, len(payload)) + payload


def _decode_container(blob: bytes) -> bytes:
    """Recover the payload from a framed (or legacy raw) container blob."""
    if len(blob) < _HEADER.size or not blob.startswith(_MAGIC):
        return blob  # Legacy raw container from before the framed format.
    magic, codec, payload_len = _HEADER.unpack_from(blob)
    body = blob[_HEADER.size:]
    if codec == CODEC_STORED:
        payload = body
    elif codec == CODEC_ZLIB:
        try:
            payload = zlib.decompress(body)
        except zlib.error as exc:
            raise StorageError(f"container decompression failed: {exc}") from exc
    else:
        raise StorageError(f"unknown container codec {codec}")
    if len(payload) != payload_len:
        raise StorageError(
            f"container payload is {len(payload)} bytes, header says {payload_len}"
        )
    return payload


def _blob_payload_len(blob: bytes) -> int:
    """Uncompressed payload length without decompressing the body."""
    if len(blob) < _HEADER.size or not blob.startswith(_MAGIC):
        return len(blob)
    _magic, _codec, payload_len = _HEADER.unpack_from(blob)
    return payload_len


class ContainerStore:
    """Append-oriented chunk storage batched into fixed-size containers.

    ``append`` buffers chunk bytes in the open container and returns the
    location the chunk *will* occupy; ``flush`` seals the open container
    into the backend.  Locations are valid immediately — reads check the
    open container before the backend — so callers never wait for a
    flush to use a location.
    """

    def __init__(
        self,
        backend: BlobBackend,
        container_bytes: int = DEFAULT_CONTAINER_BYTES,
        read_cache_containers: int = DEFAULT_READ_CACHE_CONTAINERS,
        fetch_concurrency: int = DEFAULT_FETCH_CONCURRENCY,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if container_bytes <= 0:
            raise ConfigurationError("container size must be positive")
        if fetch_concurrency <= 0:
            raise ConfigurationError("fetch concurrency must be positive")
        self._backend = backend
        self._capacity = container_bytes
        self._fetch_concurrency = fetch_concurrency
        self._lock = threading.Lock()
        self._open_id = self._next_container_id()
        self._open_buffer = bytearray()
        self._read_cache: LRUCache[int, bytes] = LRUCache(read_cache_containers)
        # Single-flight state: per-container-id events readers wait on
        # while one leader performs the backend fetch.
        self._fetch_lock = threading.Lock()
        self._in_flight: dict[int, threading.Event] = {}
        # Sealed-container byte accounting, learned at seal time (exact)
        # or lazily from headers for containers that predate this store
        # instance (restart support).
        self._payload_lens: dict[int, int] = {}
        self._stored_lens: dict[int, int] = {}
        #: Number of sealed containers written (for stats/experiments).
        self.sealed_containers = 0
        #: Container fetches that missed the read cache.
        self.container_fetches = 0
        self.metrics = metrics if metrics is not None else default_registry()
        self._m_fetches = self.metrics.counter(
            "container_fetch_total",
            "Container fetches that missed the read cache.",
        )
        self._m_payload_bytes = self.metrics.gauge(
            "container_payload_bytes",
            "Uncompressed payload bytes across sealed containers.",
        )
        self._m_compressed_bytes = self.metrics.gauge(
            "container_compressed_bytes",
            "On-disk (framed, possibly compressed) bytes across sealed containers.",
        )
        self._m_ratio = self.metrics.gauge(
            "container_compression_ratio",
            "Uncompressed over on-disk bytes for sealed containers (>= 1 when compression wins).",
        )

    def _next_container_id(self) -> int:
        """Resume numbering after existing containers (restart support)."""
        highest = -1
        for name in self._backend.list(_PREFIX):
            try:
                highest = max(highest, int(name[len(_PREFIX):]))
            except ValueError:
                continue
        return highest + 1

    @staticmethod
    def _name(container_id: int) -> str:
        return f"{_PREFIX}{container_id:012d}"

    def append(self, data: bytes) -> ChunkLocation:
        """Buffer a chunk, sealing the open container when it fills."""
        if not data:
            raise ConfigurationError("cannot store an empty chunk")
        with self._lock:
            if self._open_buffer and len(self._open_buffer) + len(data) > self._capacity:
                self._seal_locked()
            location = ChunkLocation(
                container_id=self._open_id,
                offset=len(self._open_buffer),
                length=len(data),
            )
            self._open_buffer.extend(data)
            if len(self._open_buffer) >= self._capacity:
                self._seal_locked()
            return location

    def _seal_locked(self) -> None:
        if not self._open_buffer:
            return
        payload = bytes(self._open_buffer)
        blob = _encode_container(payload)
        self._backend.put(self._name(self._open_id), blob)
        self._record_lens_locked(self._open_id, len(payload), len(blob))
        self.sealed_containers += 1
        self._open_id += 1
        self._open_buffer = bytearray()

    def _record_lens_locked(self, container_id: int, payload: int, stored: int) -> None:
        self._payload_lens[container_id] = payload
        self._stored_lens[container_id] = stored
        self._publish_compression_locked()

    def _publish_compression_locked(self) -> None:
        payload = sum(self._payload_lens.values())
        stored = sum(self._stored_lens.values())
        self._m_payload_bytes.set(payload)
        self._m_compressed_bytes.set(stored)
        self._m_ratio.set(payload / stored if stored else 1.0)

    def _learn_lens(self, container_id: int) -> None:
        """Record byte accounting for a container sealed by a previous
        store instance (statistics only: no cache or counter effects)."""
        with self._lock:
            if container_id in self._payload_lens:
                return
        try:
            blob = self._backend.get(self._name(container_id))
        except NotFoundError:
            return
        with self._lock:
            self._record_lens_locked(container_id, _blob_payload_len(blob), len(blob))

    def flush(self) -> None:
        """Seal the open container (called at the end of an upload batch)."""
        with self._lock:
            self._seal_locked()

    @property
    def open_container_id(self) -> int:
        """Id of the (possibly empty) open container — never a GC target."""
        with self._lock:
            return self._open_id

    def sealed_container_ids(self) -> list[int]:
        """Ids of every sealed container present in the backend."""
        ids = []
        for name in self._backend.list(_PREFIX):
            try:
                ids.append(int(name[len(_PREFIX):]))
            except ValueError:
                continue
        return sorted(ids)

    def has_container(self, container_id: int) -> bool:
        """Whether a container's bytes are readable (open buffer counts)."""
        with self._lock:
            if container_id == self._open_id:
                return bool(self._open_buffer)
            if container_id in self._stored_lens:
                return True
        return self._backend.exists(self._name(container_id))

    def payload_length(self, container_id: int) -> int:
        """Uncompressed payload bytes of one container (0 when absent)."""
        with self._lock:
            if container_id == self._open_id:
                return len(self._open_buffer)
            known = self._payload_lens.get(container_id)
        if known is not None:
            return known
        self._learn_lens(container_id)
        with self._lock:
            return self._payload_lens.get(container_id, 0)

    def _read_open_locked(self, location: ChunkLocation) -> bytes | None:
        """Serve a location from the open buffer, or None if sealed."""
        if location.container_id != self._open_id:
            return None
        end = location.offset + location.length
        if end > len(self._open_buffer):
            raise NotFoundError("location beyond the open container")
        return bytes(self._open_buffer[location.offset:end])

    def _get_container(self, container_id: int) -> bytes:
        """Cached container payload; single-flighted backend fetch on miss."""
        while True:
            payload = self._read_cache.get(container_id)
            if payload is not None:
                return payload
            with self._fetch_lock:
                payload = self._read_cache.get(container_id)
                if payload is not None:
                    return payload
                waiter = self._in_flight.get(container_id)
                if waiter is None:
                    waiter = threading.Event()
                    self._in_flight[container_id] = waiter
                    leader = True
                else:
                    leader = False
            if not leader:
                # Another reader is fetching this container; wait for it
                # and re-check the cache (re-fetching ourselves if the
                # leader failed or the entry was already evicted).
                waiter.wait()
                continue
            try:
                blob = self._backend.get(self._name(container_id))
                payload = _decode_container(blob)
                with self._lock:
                    self.container_fetches += 1
                    self._record_lens_locked(container_id, len(payload), len(blob))
                self._m_fetches.inc()
                self._read_cache.put(container_id, payload)
                return payload
            finally:
                with self._fetch_lock:
                    self._in_flight.pop(container_id, None)
                waiter.set()

    @staticmethod
    def _slice(payload: bytes, location: ChunkLocation) -> bytes:
        end = location.offset + location.length
        if end > len(payload):
            raise NotFoundError("location beyond its container's size")
        return payload[location.offset:end]

    def read(self, location: ChunkLocation) -> bytes:
        """Fetch a chunk's bytes from its container."""
        with self._lock:
            buffered = self._read_open_locked(location)
        if buffered is not None:
            return buffered
        return self._slice(self._get_container(location.container_id), location)

    def read_many(self, locations: list[ChunkLocation]) -> list[bytes]:
        """Fetch many chunks, hitting each distinct container exactly once.

        Groups the requested locations by container id; cache misses are
        fetched from the backend with bounded concurrency, then every
        chunk is sliced out of its (now cached) container — the coalesced
        read path that turns a fragmented restore from one fetch per
        chunk into one fetch per container.
        """
        out: list[bytes | None] = [None] * len(locations)
        by_container: dict[int, list[int]] = {}
        with self._lock:
            for i, location in enumerate(locations):
                buffered = self._read_open_locked(location)
                if buffered is not None:
                    out[i] = buffered
                else:
                    by_container.setdefault(location.container_id, []).append(i)
        missing = [cid for cid in by_container if cid not in self._read_cache]
        if len(missing) > 1:
            workers = min(self._fetch_concurrency, len(missing))
            with ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="reed-container-fetch"
            ) as pool:
                # Surface the first fetch error (list() re-raises).
                list(pool.map(self._get_container, missing))
        for cid, indexes in by_container.items():
            payload = self._get_container(cid)
            for i in indexes:
                out[i] = self._slice(payload, locations[i])
        return out  # type: ignore[return-value]

    def delete_container(self, container_id: int) -> None:
        """Drop a sealed container (garbage collection)."""
        self._read_cache.pop(container_id)
        with self._lock:
            self._payload_lens.pop(container_id, None)
            self._stored_lens.pop(container_id, None)
            self._publish_compression_locked()
        self._backend.delete(self._name(container_id))

    def stored_bytes(self) -> int:
        """Uncompressed payload bytes in sealed containers plus the open
        buffer (the byte count dedup accounting is denominated in)."""
        for container_id in self.sealed_container_ids():
            if container_id not in self._payload_lens:
                self._learn_lens(container_id)
        with self._lock:
            return sum(self._payload_lens.values()) + len(self._open_buffer)

    def sealed_payload_bytes(self) -> int:
        """Uncompressed payload bytes across known sealed containers."""
        with self._lock:
            return sum(self._payload_lens.values())

    def compressed_bytes(self) -> int:
        """On-disk bytes of sealed containers (headers included)."""
        return self._backend.total_bytes(_PREFIX)
