"""The key store.

REED separates key information from file data (Section V-A): a dedicated
key-store server persists, per file, the ABE-encrypted key state together
with the policy metadata describing who is authorized.  Rekeying replaces
this record; the data store is untouched except (in active revocation)
for the stub file.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.backend import BlobBackend, MemoryBackend
from repro.util.codec import Decoder, Encoder
from repro.util.errors import CorruptionError

_KEYSTATE_PREFIX = "keystate/"


@dataclass(frozen=True)
class KeyStateRecord:
    """The stored key envelope for one file.

    ``encrypted_state`` is the ABE ciphertext of the current key state;
    ``policy_text`` is the human-readable policy (the paper's "metadata
    that describes the policy information"); ``key_version`` mirrors the
    key-regression version so clients know how far to unwind;
    ``owner_public_key`` carries the owner's public derivation key so any
    authorized member can unwind states.
    """

    file_id: str
    policy_text: str
    key_version: int
    encrypted_state: bytes
    owner_public_key: bytes

    def encode(self) -> bytes:
        return (
            Encoder()
            .text(self.file_id)
            .text(self.policy_text)
            .uint(self.key_version)
            .blob(self.encrypted_state)
            .blob(self.owner_public_key)
            .done()
        )

    @classmethod
    def decode(cls, data: bytes) -> "KeyStateRecord":
        dec = Decoder(data)
        record = cls(
            file_id=dec.text(),
            policy_text=dec.text(),
            key_version=dec.uint(),
            encrypted_state=dec.blob(),
            owner_public_key=dec.blob(),
        )
        dec.expect_end()
        if record.key_version < 0:
            raise CorruptionError("negative key version")
        return record


class KeyStore:
    """Per-file key-state records over a blob backend.

    The ``*_many`` variants carry *per-item* status — each item resolves
    independently to its value (or ``None`` for writes) or to the
    exception that failed it, so one bad record never poisons a batch.
    They are what the batched key-state RPCs bind to
    (:func:`repro.core.service.register_keystate_service`).
    """

    def __init__(self, backend: BlobBackend | None = None) -> None:
        self.backend = backend if backend is not None else MemoryBackend()

    def put(self, record: KeyStateRecord) -> None:
        self.backend.put(_KEYSTATE_PREFIX + record.file_id, record.encode())

    def get(self, file_id: str) -> KeyStateRecord:
        return KeyStateRecord.decode(self.backend.get(_KEYSTATE_PREFIX + file_id))

    def delete(self, file_id: str) -> None:
        self.backend.delete(_KEYSTATE_PREFIX + file_id)

    def put_many(
        self, records: list[KeyStateRecord]
    ) -> list[None | Exception]:
        results: list[None | Exception] = []
        for record in records:
            try:
                self.put(record)
                results.append(None)
            except Exception as exc:  # noqa: BLE001 - carried per item
                results.append(exc)
        return results

    def get_many(
        self, file_ids: list[str]
    ) -> list[KeyStateRecord | Exception]:
        results: list[KeyStateRecord | Exception] = []
        for file_id in file_ids:
            try:
                results.append(self.get(file_id))
            except Exception as exc:  # noqa: BLE001 - carried per item
                results.append(exc)
        return results

    def delete_many(self, file_ids: list[str]) -> list[None | Exception]:
        results: list[None | Exception] = []
        for file_id in file_ids:
            try:
                self.delete(file_id)
                results.append(None)
            except Exception as exc:  # noqa: BLE001 - carried per item
                results.append(exc)
        return results

    def exists(self, file_id: str) -> bool:
        return self.backend.exists(_KEYSTATE_PREFIX + file_id)

    def list_files(self) -> list[str]:
        return [
            name[len(_KEYSTATE_PREFIX):]
            for name in self.backend.list(_KEYSTATE_PREFIX)
        ]

    def stored_bytes(self) -> int:
        return self.backend.total_bytes(_KEYSTATE_PREFIX)
