"""Remote data checking: Merkle proofs that the cloud still stores a file.

The paper assumes REED "can be deployed in conjunction with remote data
checking [12], [35] to efficiently check the integrity of outsourced
files" (Section III-B).  This module provides that companion: a
challenge-response protocol over a Merkle tree of the file's trimmed
packages.

* The client keeps only the 32-byte Merkle **root** per file (computed
  at upload time from the recipe's fingerprints).
* To audit, the client sends a random subset of chunk positions; the
  **server** answers with each chunk's fingerprint and its Merkle
  authentication path, re-hashing the stored trimmed package to prove it
  still holds the bytes (not just the metadata).
* The client verifies each path against the root — O(log n) hashes per
  challenged chunk, no data transfer.

A server that lost or corrupted any challenged chunk cannot produce a
valid response (it would need a SHA-256 collision).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.drbg import SYSTEM_RANDOM, RandomSource
from repro.crypto.hashing import sha256
from repro.util.errors import ConfigurationError, IntegrityError, NotFoundError

#: Domain separation for leaves vs interior nodes (defends against
#: second-preimage shenanigans between levels).
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


def _leaf(fingerprint: bytes) -> bytes:
    return sha256(_LEAF_PREFIX + fingerprint)


def _node(left: bytes, right: bytes) -> bytes:
    return sha256(_NODE_PREFIX + left + right)


def _tree_levels(fingerprints: list[bytes]) -> list[list[bytes]]:
    """All levels, leaves first.  Odd nodes are promoted unchanged."""
    if not fingerprints:
        raise ConfigurationError("cannot build a Merkle tree over zero chunks")
    level = [_leaf(fp) for fp in fingerprints]
    levels = [level]
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(_node(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
        levels.append(level)
    return levels


def merkle_root(fingerprints: list[bytes]) -> bytes:
    """The 32-byte commitment a client keeps per file."""
    return _tree_levels(fingerprints)[-1][0]


@dataclass(frozen=True)
class AuditPath:
    """Authentication path for one challenged chunk.

    ``siblings`` lists (is_right, hash) pairs from leaf to root:
    ``is_right`` says whether the sibling sits to the right of the
    running hash.  An empty-sibling level (odd promotion) is skipped.
    """

    position: int
    fingerprint: bytes
    siblings: tuple[tuple[bool, bytes], ...]


@dataclass(frozen=True)
class AuditChallenge:
    """Positions the verifier wants proven."""

    file_id: str
    positions: tuple[int, ...]


@dataclass(frozen=True)
class AuditResponse:
    file_id: str
    paths: tuple[AuditPath, ...]


def make_challenge(
    file_id: str,
    chunk_count: int,
    sample_size: int,
    rng: RandomSource | None = None,
) -> AuditChallenge:
    """Sample ``sample_size`` distinct positions uniformly.

    Sampling s of n chunks detects a server missing a fraction f of them
    with probability 1 - (1-f)^s; s=30 catches 10% loss w.p. ~0.96.
    """
    if chunk_count <= 0:
        raise ConfigurationError("file has no chunks to audit")
    if sample_size <= 0:
        raise ConfigurationError("sample size must be positive")
    rng = rng or SYSTEM_RANDOM
    sample_size = min(sample_size, chunk_count)
    chosen: set[int] = set()
    while len(chosen) < sample_size:
        chosen.add(rng.randint_below(chunk_count))
    return AuditChallenge(file_id=file_id, positions=tuple(sorted(chosen)))


def prove(
    challenge: AuditChallenge,
    fingerprints: list[bytes],
    fetch_chunk,
) -> AuditResponse:
    """Server side: build authentication paths, re-hashing stored bytes.

    ``fetch_chunk(fingerprint) -> bytes`` must return the stored trimmed
    package; its hash is recomputed so the proof attests to the *bytes*,
    not to the index entry.
    """
    levels = _tree_levels(fingerprints)
    paths = []
    for position in challenge.positions:
        if not 0 <= position < len(fingerprints):
            raise ConfigurationError(f"challenged position {position} out of range")
        stored = fetch_chunk(fingerprints[position])
        actual_fp = sha256(stored)
        siblings: list[tuple[bool, bytes]] = []
        index = position
        for level in levels[:-1]:
            sibling_index = index ^ 1
            if sibling_index < len(level):
                siblings.append((bool(sibling_index > index), level[sibling_index]))
            index //= 2
        paths.append(
            AuditPath(
                position=position,
                fingerprint=actual_fp,
                siblings=tuple(siblings),
            )
        )
    return AuditResponse(file_id=challenge.file_id, paths=tuple(paths))


def verify(
    root: bytes,
    challenge: AuditChallenge,
    response: AuditResponse,
) -> None:
    """Client side: check every path against the stored root.

    Raises :class:`IntegrityError` on any mismatch (lost chunk, bit rot,
    or a server answering for the wrong positions).
    """
    if response.file_id != challenge.file_id:
        raise IntegrityError("audit response names the wrong file")
    answered = {path.position for path in response.paths}
    if answered != set(challenge.positions):
        raise IntegrityError("audit response does not cover the challenge")
    for path in response.paths:
        running = _leaf(path.fingerprint)
        for is_right, sibling in path.siblings:
            if is_right:
                running = _node(running, sibling)
            else:
                running = _node(sibling, running)
        if running != root:
            raise IntegrityError(
                f"audit path for chunk {path.position} does not reach the root"
            )


class FileAuditor:
    """Convenience wrapper tying the protocol to a storage service.

    The client computes and retains roots at upload time (here: from the
    recipe); ``audit`` runs one challenge round against the server.
    """

    def __init__(self, storage, rng: RandomSource | None = None) -> None:
        self._storage = storage
        self._rng = rng or SYSTEM_RANDOM
        self._roots: dict[str, tuple[bytes, list[bytes]]] = {}

    def register(self, file_id: str, fingerprints: list[bytes]) -> bytes:
        root = merkle_root(fingerprints)
        self._roots[file_id] = (root, list(fingerprints))
        return root

    def audit(self, file_id: str, sample_size: int = 30) -> int:
        """Run one audit round; returns the number of chunks verified."""
        entry = self._roots.get(file_id)
        if entry is None:
            raise NotFoundError(f"no audit root registered for {file_id!r}")
        root, fingerprints = entry
        challenge = make_challenge(file_id, len(fingerprints), sample_size, self._rng)

        # One batched fetch for every sampled chunk (dedup repeats) —
        # the audit costs one storage round trip instead of one per
        # sampled fingerprint.
        wanted: list[bytes] = []
        seen: set[bytes] = set()
        for position in challenge.positions:
            fingerprint = fingerprints[position]
            if fingerprint not in seen:
                seen.add(fingerprint)
                wanted.append(fingerprint)
        fetched = dict(
            zip(wanted, self._storage.chunk_get_batch(wanted))
        ) if wanted else {}

        def fetch(fingerprint: bytes) -> bytes:
            return fetched[fingerprint]

        response = prove(challenge, fingerprints, fetch)
        verify(root, challenge, response)
        return len(challenge.positions)
