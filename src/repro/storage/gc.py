"""Background compaction GC for partially-dead containers.

``DataStore.release_chunk`` only deletes a container once *every* chunk
in it is garbage; a container holding one live chunk strands the rest as
dead space forever (ROADMAP item 3).  The compaction GC closes that gap:
it scans the index's per-container live/dead accounting, picks sealed
containers whose dead-space ratio meets a threshold, rewrites their
surviving chunks into fresh containers, repoints the ``ChunkLocation``s
atomically under the index lock (:meth:`FingerprintIndex.relocate_many`,
compare-and-swap per entry so concurrently released chunks are not
resurrected), and deletes the old container.

:class:`CompactionDaemon` runs passes on an interval, mirroring
``RepairDaemon``: a failing pass records its error and the next interval
retries — the thread itself never dies.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry, default_registry
from repro.storage.datastore import DataStore
from repro.util.errors import ConfigurationError, NotFoundError, StorageError

#: Containers at least this fraction dead are compaction candidates.
DEFAULT_DEAD_SPACE_THRESHOLD = 0.25

#: Seconds between background compaction passes.
DEFAULT_GC_INTERVAL = 30.0


@dataclass
class CompactionReport:
    """Result of one compaction pass."""

    scanned_containers: int = 0
    #: Containers meeting the threshold this pass.
    candidates: int = 0
    compacted_containers: int = 0
    relocated_chunks: int = 0
    relocated_bytes: int = 0
    #: Dead bytes reclaimed (old-container payload minus rewritten live bytes).
    reclaimed_bytes: int = 0
    dead_ratio_before: float = 0.0
    dead_ratio_after: float = 0.0
    #: Candidates skipped because they vanished mid-pass (raced a
    #: concurrent release that deleted the whole container).
    skipped: int = 0
    errors: list[str] = field(default_factory=list)


class CompactionGC:
    """Rewrites mostly-dead containers so their dead bytes are reclaimed.

    Works over a single :class:`DataStore` or anything exposing a
    ``shards`` list of them (``ShardedDataStore``); every shard is
    compacted independently in one pass.
    """

    def __init__(
        self,
        store,
        threshold: float = DEFAULT_DEAD_SPACE_THRESHOLD,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError("GC threshold must be in (0, 1]")
        self.store = store
        self.threshold = threshold
        self.metrics = metrics if metrics is not None else default_registry()
        self.last_report: CompactionReport | None = None
        self._lock = threading.Lock()
        self._m_passes = self.metrics.counter(
            "gc_passes_total", "Compaction passes completed."
        )
        self._m_reclaimed = self.metrics.counter(
            "gc_bytes_reclaimed_total",
            "Dead container bytes reclaimed by compaction.",
        )
        self._m_compacted = self.metrics.counter(
            "gc_containers_compacted_total",
            "Containers rewritten (or dropped) by compaction.",
        )
        self._m_relocated = self.metrics.counter(
            "gc_chunks_relocated_total",
            "Live chunks rewritten into fresh containers by compaction.",
        )

    def _stores(self) -> list[DataStore]:
        shards = getattr(self.store, "shards", None)
        if shards is None:
            return [self.store]
        return list(shards)

    def dead_space(self) -> tuple[int, int, float]:
        """Aggregate (live, dead, dead_ratio) across every shard."""
        live = 0
        dead = 0
        for store in self._stores():
            shard_live, shard_dead, _ = store.dead_space()
            live += shard_live
            dead += shard_dead
        total = live + dead
        return live, dead, dead / total if total else 0.0

    def candidate_containers(self, threshold: float | None = None) -> int:
        """How many sealed containers currently meet the threshold."""
        limit = self.threshold if threshold is None else threshold
        count = 0
        for store in self._stores():
            count += len(self._candidates(store, limit))
        return count

    @staticmethod
    def _candidates(store: DataStore, threshold: float) -> list[int]:
        open_id = store.containers.open_container_id
        out = []
        for cid, usage in sorted(store.index.container_usage().items()):
            if cid == open_id or usage.dead_bytes == 0:
                continue
            if usage.dead_ratio >= threshold and store.containers.has_container(cid):
                out.append(cid)
        return out

    def run_once(self, threshold: float | None = None) -> CompactionReport:
        """One compaction pass over every shard (serialized per GC)."""
        limit = self.threshold if threshold is None else threshold
        if not 0.0 < limit <= 1.0:
            raise ConfigurationError("GC threshold must be in (0, 1]")
        with self._lock:
            report = CompactionReport()
            _live, _dead, report.dead_ratio_before = self.dead_space()
            for store in self._stores():
                self._compact_store(store, limit, report)
            _live, _dead, report.dead_ratio_after = self.dead_space()
            self._m_passes.inc()
            self.last_report = report
            return report

    def _compact_store(
        self, store: DataStore, threshold: float, report: CompactionReport
    ) -> None:
        report.scanned_containers += len(store.index.container_usage())
        candidates = self._candidates(store, threshold)
        report.candidates += len(candidates)
        for cid in candidates:
            try:
                self._compact_container(store, cid, report)
            except NotFoundError:
                # The container (or a chunk) vanished mid-compaction — a
                # concurrent release emptied and deleted it.  Nothing to
                # reclaim that was not already reclaimed.
                report.skipped += 1
            except StorageError as exc:
                report.errors.append(f"container {cid}: {exc}")
        if report.compacted_containers:
            # Seal the rewritten chunks and refresh the index snapshot so
            # a restart after compaction sees the new locations.
            store.flush()

    def _compact_container(
        self, store: DataStore, cid: int, report: CompactionReport
    ) -> None:
        dead_before = store.index.usage_for(cid).dead_bytes
        survivors = store.index.entries_in_container(cid)
        if not survivors:
            # Fully dead: no rewrite needed, just drop it.
            store.containers.delete_container(cid)
            store.index.clear_container(cid)
            report.compacted_containers += 1
            report.reclaimed_bytes += dead_before
            self._m_compacted.inc()
            self._m_reclaimed.inc(dead_before)
            return
        locations = [location for _, location in survivors]
        chunks = store.containers.read_many(locations)
        moves = []
        for (fingerprint, old), data in zip(survivors, chunks):
            new = store.containers.append(data)
            moves.append((fingerprint, old, new))
        applied = store.index.relocate_many(moves)
        store.containers.delete_container(cid)
        store.index.clear_container(cid)
        relocated_bytes = sum(new.length for _, _, new in moves)
        report.compacted_containers += 1
        report.relocated_chunks += applied
        report.relocated_bytes += relocated_bytes
        report.reclaimed_bytes += dead_before
        self._m_compacted.inc()
        self._m_relocated.inc(applied)
        self._m_reclaimed.inc(dead_before)

    def status(self) -> dict:
        """Operator-facing snapshot (the ``storage.gc`` RPC payload)."""
        live, dead, ratio = self.dead_space()
        last = self.last_report
        return {
            "threshold": self.threshold,
            "live_bytes": live,
            "dead_bytes": dead,
            "dead_space_ratio": ratio,
            "candidates": self.candidate_containers(),
            "passes": int(self._m_passes.value),
            "bytes_reclaimed_total": int(self._m_reclaimed.value),
            "containers_compacted_total": int(self._m_compacted.value),
            "chunks_relocated_total": int(self._m_relocated.value),
            "last_reclaimed_bytes": last.reclaimed_bytes if last else 0,
            "last_relocated_chunks": last.relocated_chunks if last else 0,
        }


class CompactionDaemon:
    """Background thread running :meth:`CompactionGC.run_once` on an
    interval — the storage engine's space-reclamation loop.

    Use as a context manager or call :meth:`start`/:meth:`stop`.
    :meth:`run_now` forces an immediate pass (tests, CLI ``reed gc run``).
    """

    def __init__(
        self,
        gc: CompactionGC,
        interval: float = DEFAULT_GC_INTERVAL,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError("GC interval must be positive")
        self.gc = gc
        self.interval = interval
        self.last_report: CompactionReport | None = None
        #: Exception that aborted the most recent pass (None after a
        #: pass completes) — the daemon's health surface.
        self.last_error: Exception | None = None
        self.passes = 0
        self.failed_passes = 0
        self._m_pass_failures = gc.metrics.counter(
            "gc_pass_failures_total",
            "Compaction passes aborted by an unexpected error.",
        )
        self._stop = threading.Event()
        self._wake = threading.Event()
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()

    def _loop(self) -> None:
        # A failing pass must never kill the thread: a daemon that died
        # silently looks healthy while dead space grows unbounded.  The
        # error is recorded and the next interval retries.
        while not self._stop.is_set():
            try:
                self.run_now()
            except Exception as exc:  # noqa: BLE001 - keep the loop alive
                self.last_error = exc
                self.failed_passes += 1
                self._m_pass_failures.inc()
            self._wake.wait(self.interval)
            self._wake.clear()

    def run_now(self) -> CompactionReport:
        with self._lock:
            report = self.gc.run_once()
            self.last_report = report
            self.last_error = None
            self.passes += 1
            return report

    def start(self) -> None:
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="reed-compaction", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._wake.set()
        self._thread.join()
        self._thread = None

    def __enter__(self) -> "CompactionDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
