"""File recipes.

A recipe records how to reassemble a file from its chunks (Section IV-D):
the file's identity and size, the encryption scheme used, the ordered
list of trimmed-package fingerprints with chunk sizes, and the
key-regression version whose file key encrypts the stub file.  Recipes
live in the data store; like the paper, sensitive metadata (the
pathname) can be obfuscated with a salted hash before upload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256
from repro.util.codec import Decoder, Encoder
from repro.util.errors import CorruptionError

#: Recipe format version (for forward compatibility on disk).
RECIPE_FORMAT = 1


@dataclass(frozen=True)
class ChunkRef:
    """One recipe entry: the trimmed package's fingerprint and chunk size."""

    fingerprint: bytes
    length: int


@dataclass(frozen=True)
class FileRecipe:
    """Reassembly metadata for one stored file."""

    file_id: str
    pathname: str
    size: int
    scheme: str
    key_version: int
    chunks: tuple[ChunkRef, ...] = field(default_factory=tuple)

    @property
    def chunk_count(self) -> int:
        return len(self.chunks)

    def encode(self) -> bytes:
        enc = (
            Encoder()
            .uint(RECIPE_FORMAT)
            .text(self.file_id)
            .text(self.pathname)
            .uint(self.size)
            .text(self.scheme)
            .uint(self.key_version)
            .uint(len(self.chunks))
        )
        for ref in self.chunks:
            enc.blob(ref.fingerprint)
            enc.uint(ref.length)
        return enc.done()

    @classmethod
    def decode(cls, data: bytes) -> "FileRecipe":
        dec = Decoder(data)
        version = dec.uint()
        if version != RECIPE_FORMAT:
            raise CorruptionError(f"unsupported recipe format {version}")
        file_id = dec.text()
        pathname = dec.text()
        size = dec.uint()
        scheme = dec.text()
        key_version = dec.uint()
        count = dec.uint()
        chunks = tuple(
            ChunkRef(fingerprint=dec.blob(), length=dec.uint()) for _ in range(count)
        )
        dec.expect_end()
        recipe = cls(
            file_id=file_id,
            pathname=pathname,
            size=size,
            scheme=scheme,
            key_version=key_version,
            chunks=chunks,
        )
        total = sum(ref.length for ref in chunks)
        if total != size:
            raise CorruptionError(
                f"recipe size {size} disagrees with chunk total {total}"
            )
        return recipe


def obfuscate_pathname(pathname: str, salt: bytes) -> str:
    """Salted-hash obfuscation for pathnames (paper Section IV-D).

    Deterministic per (salt, pathname) so the same file maps to the same
    obfuscated name across snapshots, without revealing the original.
    """
    return sha256(salt + pathname.encode("utf-8")).hex()
