"""Rekeying-approach comparison: REED vs the Section II-C baselines.

Quantifies the design space the paper argues through:

| approach           | rekey cost            | dedup after rekey | leaked-MLE-key safe |
|--------------------|-----------------------|-------------------|---------------------|
| full re-encryption | O(file) moved twice   | broken            | yes                 |
| layered encryption | O(keys) rewrapped     | preserved         | **no**              |
| REED (active)      | O(stubs) = 64 B/chunk | preserved         | yes (enhanced)      |

Measured on the real implementations over the same corpus.
"""

import pytest

from benchmarks.common import save_result
from repro.baselines.layered import LayeredEncryption
from repro.baselines.reencrypt import EpochedConvergentEncryption
from repro.core.schemes import get_scheme
from repro.core.stubs import encrypt_stub_file, reencrypt_stub_file
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import sha256
from repro.util.units import KiB
from repro.workloads.synthetic import unique_data

CHUNK_COUNT = 128
CHUNK_SIZE = 8 * KiB
OLD_EPOCH = b"\x01" * 32
NEW_EPOCH = b"\x02" * 32
OLD_MASTER = b"\x03" * 32
NEW_MASTER = b"\x04" * 32


@pytest.fixture(scope="module")
def corpus():
    data = unique_data(CHUNK_COUNT * CHUNK_SIZE, seed=11)
    return [data[i : i + CHUNK_SIZE] for i in range(0, len(data), CHUNK_SIZE)]


def test_rekey_full_reencryption(benchmark, corpus):
    epoched = EpochedConvergentEncryption()
    stored = []
    for chunk in corpus:
        ciphertext, _ = epoched.encrypt_chunk(OLD_EPOCH, chunk)
        stored.append((ciphertext, sha256(chunk)))

    def rekey():
        _renewed, cost = epoched.reencrypt_all(OLD_EPOCH, NEW_EPOCH, stored)
        return cost

    cost = benchmark(rekey)
    benchmark.extra_info["bytes_moved"] = cost.bytes_moved
    save_result(
        "baselines",
        f"full re-encryption: {cost.bytes_moved:,} bytes moved, "
        f"{benchmark.stats['mean'] * 1e3:.1f} ms "
        f"({CHUNK_COUNT} x {CHUNK_SIZE} B chunks)",
    )


def test_rekey_layered(benchmark, corpus):
    layered = LayeredEncryption()
    rng = HmacDrbg(b"layered")
    wrapped = []
    for i, chunk in enumerate(corpus):
        mle_key = sha256(b"mle" + chunk[:32])
        _ct, _fp, wk = layered.encrypt_chunk(chunk, mle_key, OLD_MASTER, rng)
        wrapped.append(wk)

    def rekey():
        return [
            layered.rekey_wrapped(wk, OLD_MASTER, NEW_MASTER, rng) for wk in wrapped
        ]

    out = benchmark(rekey)
    moved = sum(wk.size for wk in out) * 2
    benchmark.extra_info["bytes_moved"] = moved
    save_result(
        "baselines",
        f"layered encryption: {moved:,} bytes moved, "
        f"{benchmark.stats['mean'] * 1e3:.1f} ms (MLE-key leak NOT healed)",
    )


def test_rekey_reed_active(benchmark, corpus):
    scheme = get_scheme("enhanced")
    rng = HmacDrbg(b"reed")
    stubs = []
    for chunk in corpus:
        split = scheme.encrypt_chunk(chunk, sha256(b"mle" + chunk[:32]))
        stubs.append(split.stub)
    old_key = b"\x05" * 32
    new_key = b"\x06" * 32
    stub_file = encrypt_stub_file(old_key, stubs, rng=rng)

    def rekey():
        return reencrypt_stub_file(old_key, new_key, stub_file, rng=rng)

    out = benchmark(rekey)
    moved = len(stub_file) + len(out)
    benchmark.extra_info["bytes_moved"] = moved
    save_result(
        "baselines",
        f"REED active rekey: {moved:,} bytes moved, "
        f"{benchmark.stats['mean'] * 1e3:.1f} ms (dedup intact, leak healed)",
    )


def test_comparison_summary(corpus):
    """The punchline, asserted: REED moves ~2 orders of magnitude less
    than full re-encryption while (unlike layered encryption) actually
    renewing the protection of the stored bytes."""
    file_bytes = CHUNK_COUNT * CHUNK_SIZE
    reed_bytes = CHUNK_COUNT * 64 * 2
    reencrypt_bytes = file_bytes * 2
    assert reencrypt_bytes / reed_bytes == pytest.approx(128, rel=0.01)
    save_result(
        "baselines",
        f"summary: file={file_bytes:,}B; REED moves {reed_bytes:,}B, "
        f"re-encryption moves {reencrypt_bytes:,}B ({reencrypt_bytes // reed_bytes}x)",
    )
