"""Ablation benches for the design choices DESIGN.md calls out.

Not figures from the paper — these quantify the *why* behind REED's
parameter choices using this implementation:

* **stub size** (paper fixes 64 B): storage overhead vs rekey cost trade;
* **key-generation batch size** (paper fixes 256): round-trip savings;
* **MLE key cache** (paper fixes 512 MB): hit-rate impact on uploads;
* **container size** (paper fixes 4 MB): backend object count trade.
"""

import pytest

from benchmarks.common import save_result
from repro.chunking.chunker import ChunkingSpec
from repro.core.schemes import get_scheme
from repro.core.system import build_system
from repro.crypto.drbg import HmacDrbg
from repro.sim.costmodel import PAPER_TESTBED
from repro.util.units import GiB, KiB, MiB
from repro.workloads.synthetic import unique_data

CHUNK = unique_data(8 * KiB, seed=95)
KEY = bytes(range(32))


class TestStubSizeAblation:
    @pytest.mark.parametrize("stub_size", [48, 64, 128, 256])
    def test_encrypt_cost_vs_stub_size(self, benchmark, stub_size):
        """Encryption cost is stub-size independent (trim is a slice);
        what changes is the storage overhead and the rekey payload."""
        scheme = get_scheme("enhanced", stub_size=stub_size)
        split = benchmark(scheme.encrypt_chunk, CHUNK, KEY)
        overhead = stub_size / len(CHUNK)
        rekey_bytes_8g = (8 * GiB // (8 * KiB)) * stub_size
        benchmark.extra_info["storage_overhead_pct"] = round(overhead * 100, 2)
        save_result(
            "ablations",
            f"stub={stub_size}B: overhead={overhead * 100:.2f}% of 8KB chunk, "
            f"active-rekey payload for 8GB file = {rekey_bytes_8g / MiB:.0f} MiB, "
            f"trimmed={len(split.trimmed_package)}B",
        )

    def test_stub_size_model_tradeoff(self):
        """Model-scale: doubling the stub doubles active-rekey transfer."""
        import dataclasses

        base = PAPER_TESTBED.rekey_time(500, 0.2, 8 * GiB, active=True)
        doubled_model = dataclasses.replace(PAPER_TESTBED, stub_size=128)
        doubled = doubled_model.rekey_time(500, 0.2, 8 * GiB, active=True)
        assert doubled > base
        save_result(
            "ablations",
            f"model: active rekey 8GB, stub 64B -> {base:.2f}s, 128B -> {doubled:.2f}s",
        )


class TestBatchSizeAblation:
    @pytest.mark.parametrize("batch", [1, 64, 1024])
    def test_model_keygen_vs_batch(self, benchmark, batch):
        rate = benchmark(PAPER_TESTBED.keygen_rate, 8 * KiB, batch)
        benchmark.extra_info["model_MBps"] = round(rate / MiB, 2)
        save_result(
            "ablations", f"model keygen batch={batch}: {rate / MiB:.2f} MB/s"
        )


class TestCacheAblation:
    @pytest.mark.parametrize("cached", [False, True])
    def test_second_upload_with_and_without_cache(self, benchmark, cached):
        """The cache is the entire difference between first- and
        second-upload behaviour: without it, a re-upload still pays for
        every OPRF round trip."""
        data = unique_data(2 * MiB, seed=96)
        counter = [0]

        def setup():
            system = build_system(
                num_data_servers=1,
                chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
                rng=HmacDrbg(b"cache-ablation"),
            )
            client = system.new_client(
                f"u{counter[0]}", cache_bytes=(32 * MiB if cached else None)
            )
            counter[0] += 1
            client.upload("first", data)
            return (client,), {}

        def second_upload(client):
            client.upload("second", data)
            return client.key_client.oprf_evaluations

        benchmark.pedantic(second_upload, setup=setup, rounds=2)
        save_result(
            "ablations",
            f"2nd upload cache={'on' if cached else 'off'}: "
            f"{benchmark.stats['mean'] * 1e3:.0f} ms",
        )


class TestContainerSizeAblation:
    @pytest.mark.parametrize("container_kib", [64, 512, 4096])
    def test_upload_vs_container_size(self, benchmark, container_kib):
        data = unique_data(2 * MiB, seed=97)
        counter = [0]

        def setup():
            system = build_system(
                num_data_servers=1,
                chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
                rng=HmacDrbg(b"container-ablation"),
                container_bytes=container_kib * KiB,
            )
            client = system.new_client(f"u{counter[0]}", cache_bytes=32 * MiB)
            counter[0] += 1
            return (system, client), {}

        def upload(system, client):
            client.upload("file", data)
            return sum(s.store.containers.sealed_containers for s in system.servers)

        benchmark.pedantic(upload, setup=setup, rounds=2)
        save_result(
            "ablations",
            f"container={container_kib}KiB: upload 2MiB in "
            f"{benchmark.stats['mean'] * 1e3:.0f} ms",
        )


class TestGroupRekeyAblation:
    """Group rekeying vs per-file rekeying (the repro's extension of the
    paper's future-work item): one ABE op per group vs one per file."""

    @pytest.mark.parametrize("files", [2, 8])
    def test_group_vs_per_file_rekey(self, benchmark, files):
        from repro.core.groups import GroupManager
        from repro.core.policy import FilePolicy
        from repro.core.rekey import RevocationMode

        counter = [0]

        def setup():
            system = build_system(
                num_data_servers=1,
                chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
                rng=HmacDrbg(b"group-ablation"),
            )
            owner = system.new_client(f"owner{counter[0]}", cache_bytes=32 * MiB)
            counter[0] += 1
            groups = GroupManager(owner)
            policy = FilePolicy.for_users(
                [owner.user_id] + [f"user{i}" for i in range(99)]
            )
            groups.create_group("g", policy)
            data = unique_data(256 * KiB, seed=99)
            for i in range(files):
                groups.upload("g", f"f{i}", data)
            new_policy = policy.without_users({f"user{i}" for i in range(20)})
            return (groups, new_policy), {}

        def group_rekey(groups, new_policy):
            return groups.rekey("g", new_policy, RevocationMode.LAZY)

        result = benchmark.pedantic(group_rekey, setup=setup, rounds=2)
        assert result.abe_operations == 1
        assert result.files_rewrapped == files
        save_result(
            "ablations",
            f"group rekey over {files} files (100-user policy): "
            f"{benchmark.stats['mean'] * 1e3:.1f} ms, 1 ABE op "
            f"(per-file design would need {files})",
        )

    def test_model_scale_amortization(self):
        """At paper scale: rekeying a 500-file project with 400 remaining
        users costs ~2s grouped vs ~17min per-file."""
        per_file_abe = 400 * PAPER_TESTBED.abe_encrypt_per_leaf_seconds
        per_file_total = 500 * (
            PAPER_TESTBED.rekey_fixed_seconds
            + PAPER_TESTBED.abe_decrypt_seconds
            + per_file_abe
        )
        grouped_total = (
            PAPER_TESTBED.rekey_fixed_seconds
            + PAPER_TESTBED.abe_decrypt_seconds
            + per_file_abe
            + 500 * 0.001  # symmetric re-wraps
        )
        assert per_file_total / grouped_total > 100
        save_result(
            "ablations",
            f"model: project of 500 files, 400-user policy: per-file rekey "
            f"{per_file_total:.0f}s vs grouped {grouped_total:.1f}s",
        )
