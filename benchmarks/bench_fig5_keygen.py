"""Experiment A.1 / Figure 5: MLE key generation performance.

Paper setup: a client requests MLE keys for a 2 GB file of unique chunks
from the key manager (1024-bit blind RSA), varying (a) the average chunk
size with batch size 256 and (b) the batch size with 8 KB chunks.

Real measurement here: the same protocol (blind → FDH-sign → unblind →
hash) with the paper's 1024-bit RSA, in process, over a reduced key
count.  The paper's *shape* claims checked against the real run:

* Fig. 5(a): speed grows with chunk size (fewer keys per byte);
* Fig. 5(b): speed grows with batch size and saturates once the key
  manager is compute-bound.
"""

import pytest

from benchmarks.common import mbps, record_series, save_result
from repro.crypto.drbg import HmacDrbg
from repro.mle.keymanager import KeyManager
from repro.mle.server_aided import LocalKeyManagerChannel, ServerAidedKeyClient
from repro.sim.figures import PAPER_QUOTED, fig5a, fig5b
from repro.util.units import KiB

#: Keys fetched per measured round (reduced scale).
KEY_COUNT = 64


@pytest.fixture(scope="module")
def manager():
    return KeyManager(key_bits=1024, rng=HmacDrbg(b"bench-km"))


def fingerprints(n, tag):
    return [bytes([tag]) * 16 + i.to_bytes(16, "big") for i in range(n)]


@pytest.mark.parametrize("chunk_kib", [2, 4, 8, 16])
def test_fig5a_keygen_speed_vs_chunk_size(benchmark, manager, chunk_kib):
    """Real OPRF throughput, expressed as MB/s of chunk data covered."""
    client = ServerAidedKeyClient(
        LocalKeyManagerChannel(manager),
        client_id=f"bench-{chunk_kib}",
        batch_size=256,
        rng=HmacDrbg(b"bench"),
    )
    fps = fingerprints(KEY_COUNT, chunk_kib)

    def run():
        return client.get_keys(fps)

    keys = benchmark(run)
    assert len(keys) == KEY_COUNT
    covered = KEY_COUNT * chunk_kib * KiB
    rate = mbps(covered, benchmark.stats["mean"])
    benchmark.extra_info["data_rate_MBps"] = round(rate, 3)
    benchmark.extra_info["chunk_kib"] = chunk_kib
    save_result(
        "fig5",
        f"real fig5a: chunk={chunk_kib}KB keys={KEY_COUNT} -> {rate:.2f} MB/s-of-data",
    )


@pytest.mark.parametrize("batch_size", [1, 16, 64, 256])
def test_fig5b_keygen_speed_vs_batch_size(benchmark, manager, batch_size):
    client = ServerAidedKeyClient(
        LocalKeyManagerChannel(manager),
        client_id=f"bench-batch-{batch_size}",
        batch_size=batch_size,
        rng=HmacDrbg(b"bench"),
    )
    fps = fingerprints(KEY_COUNT, 99)

    def run():
        return client.get_keys(fps)

    keys = benchmark(run)
    assert len(keys) == KEY_COUNT
    covered = KEY_COUNT * 8 * KiB
    rate = mbps(covered, benchmark.stats["mean"])
    benchmark.extra_info["data_rate_MBps"] = round(rate, 3)
    benchmark.extra_info["batch_size"] = batch_size
    save_result(
        "fig5",
        f"real fig5b: batch={batch_size} keys={KEY_COUNT} -> {rate:.2f} MB/s-of-data",
    )


def test_fig5_model_series(benchmark):
    """Regenerate Fig. 5 at paper scale from the calibrated model."""

    def generate():
        return fig5a() + fig5b()

    series = benchmark(generate)
    record_series(
        "fig5",
        series,
        preamble=(
            "Figure 5 (model, paper scale) — paper quotes: "
            f"{PAPER_QUOTED['fig5a.keygen@16KB']} MB/s @16KB, "
            f"plateau {PAPER_QUOTED['fig5b.plateau@8KB']} MB/s @8KB/batch>=256"
        ),
    )
    assert series[0].y_at(16) == pytest.approx(17.64, rel=0.1)
    assert series[1].y_at(256) == pytest.approx(12.5, rel=0.1)
