"""Experiment B.2 / Figure 10: trace-driven upload/download performance.

Paper setup: replay seven consecutive daily backups (Mar 19-25, 2013;
nine users; 3.64 TB) through one REED client.  Chunks are reconstructed
by repeating their fingerprints to the recorded sizes; the key cache is
enabled but cleared between users.  Claims:

* day-1 upload is slow (~13.1 MB/s): most chunks need fresh MLE keys;
* later days run at network speed (~105 MB/s): keys are cached and the
  data dedups;
* download speed degrades slowly over days — chunk fragmentation: a
  later snapshot's chunks are scattered across containers written on
  different days.

Real measurement: the same replay at reduced scale through the full
client/server stack, measuring real speeds, real key-manager traffic,
and real container-fetch counts (the fragmentation signal).
"""

import time

import pytest

from benchmarks.common import mbps, save_result
from repro.chunking.chunker import ChunkingSpec
from repro.core.system import build_system
from repro.crypto.drbg import HmacDrbg
from repro.sim.costmodel import PAPER_TESTBED
from repro.sim.figures import PAPER_QUOTED
from repro.util.units import KiB, MiB
from repro.workloads.fsl import (
    FslhomesGenerator,
    FslParameters,
    chunk_bytes_from_fingerprint,
)

PARAMS = FslParameters(scale=2e-6, days=7, users=3)


def snapshot_payload(snapshot):
    """Reconstruct a snapshot's file bytes exactly as the paper does."""
    return b"".join(
        chunk_bytes_from_fingerprint(c.fingerprint, c.size) for c in snapshot.chunks
    )


def replay_trace():
    """Run the 7-day replay; returns per-day (up_speed, down_speed,
    oprf_calls, container_fetches)."""
    generator = FslhomesGenerator(PARAMS)
    # Small containers scale the fragmentation effect down with the data:
    # the paper's 4 MB containers vs TB-scale days become 64 KB containers
    # vs MB-scale days.
    system = build_system(
        num_data_servers=4,
        chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
        rng=HmacDrbg(b"fig10"),
        container_bytes=64 * KiB,
    )
    clients = {
        user: system.new_client(user, cache_bytes=64 * MiB)
        for user in generator.users()
    }
    results = []
    for day, snapshots in enumerate(generator.days()):
        day_bytes = 0
        oprf_before = sum(c.key_client.oprf_evaluations for c in clients.values())
        started = time.perf_counter()
        for snapshot in snapshots:
            payload = snapshot_payload(snapshot)
            day_bytes += len(payload)
            clients[snapshot.user].upload(f"{snapshot.user}-d{day}", payload)
        up_seconds = time.perf_counter() - started
        oprf_after = sum(c.key_client.oprf_evaluations for c in clients.values())

        fetches_before = sum(
            s.store.containers.container_fetches for s in system.servers
        )
        started = time.perf_counter()
        for snapshot in snapshots:
            clients[snapshot.user].download(f"{snapshot.user}-d{day}")
        down_seconds = time.perf_counter() - started
        fetches_after = sum(
            s.store.containers.container_fetches for s in system.servers
        )
        results.append(
            {
                "day": day,
                "bytes": day_bytes,
                "up_MBps": mbps(day_bytes, up_seconds),
                "down_MBps": mbps(day_bytes, down_seconds),
                "oprf": oprf_after - oprf_before,
                "container_fetches": fetches_after - fetches_before,
            }
        )
    return results


@pytest.fixture(scope="module")
def trace_results():
    return replay_trace()


def test_fig10_trace_replay(benchmark, trace_results):
    results = benchmark.pedantic(replay_trace, rounds=1)
    for row in results:
        save_result(
            "fig10",
            f"real fig10 day {row['day']}: up={row['up_MBps']:.1f} MB/s "
            f"down={row['down_MBps']:.1f} MB/s oprf={row['oprf']} "
            f"container_fetches={row['container_fetches']}",
        )
    benchmark.extra_info["day1_up_MBps"] = round(results[0]["up_MBps"], 2)
    benchmark.extra_info["steady_up_MBps"] = round(results[-1]["up_MBps"], 2)


def test_fig10_day1_is_key_generation_bound(trace_results):
    """Day 1 performs nearly all OPRF evaluations; later days nearly none
    (cached keys + dedup), so upload speed jumps after day 1."""
    day1 = trace_results[0]
    later = trace_results[1:]
    assert day1["oprf"] > 0
    mean_later_oprf = sum(r["oprf"] for r in later) / len(later)
    assert mean_later_oprf < 0.5 * day1["oprf"]
    steady = sum(r["up_MBps"] for r in later) / len(later)
    assert steady > 1.3 * day1["up_MBps"]


def test_fig10_download_fragmentation_grows(trace_results):
    """Fragmentation signal: a day-1 snapshot reads sequentially written
    containers, while later snapshots mix chunks written on many
    different days — so later downloads touch *more* containers per new
    byte uploaded that day (their data mostly lives in old containers)."""
    first = trace_results[0]
    last = trace_results[-1]
    # Day 1 reads roughly the containers it just wrote.  The last day
    # wrote almost nothing new (high dedup) but still must fetch the
    # containers of all its historical chunks.
    assert last["container_fetches"] > 0
    first_ratio = first["container_fetches"] / max(1, first["oprf"])
    last_ratio = last["container_fetches"] / max(1, last["oprf"])
    assert last_ratio >= first_ratio


def test_fig10_model_scale():
    """Paper-scale day-1 vs steady-state speeds from the cost model."""
    day1 = PAPER_TESTBED.upload_rate(8 * KiB, "enhanced", keys_cached=False)
    steady = PAPER_TESTBED.upload_rate(8 * KiB, "enhanced", keys_cached=True)
    save_result(
        "fig10",
        f"model fig10: day1={day1 / MiB:.1f} MB/s "
        f"(paper {PAPER_QUOTED['fig10.day1_upload']}), "
        f"steady={steady / MiB:.1f} MB/s "
        f"(paper {PAPER_QUOTED['fig10.steady_upload']})",
    )
    assert day1 / MiB == pytest.approx(13.1, rel=0.25)
    assert steady / MiB == pytest.approx(105.0, rel=0.10)
