"""Experiment A.4 / Figure 8: rekeying performance.

Paper setup: rekey a stored file, varying (a) the total number of
authorized users (100-500, 20 % revoked, 2 GB file), (b) the revocation
ratio (5-50 %, 500 users), and (c) the rekeyed file size (1-8 GB, 500
users, 20 %).  Claims: delays stay within seconds; lazy is ~0.6 s faster
than active at 2 GB; lazy is flat in file size while active grows with
the stub file.

Real measurement: actual rekey operations through the full stack — real
key-regression wind, real access-tree encryption over N-user policies,
real stub-file re-encryption — at reduced file scale.  The real shapes
(delay grows with remaining users; lazy flat in file size; active grows)
are asserted, not just timed.
"""

import time

import pytest

from benchmarks.common import record_series, save_result
from repro.chunking.chunker import ChunkingSpec
from repro.core.policy import FilePolicy
from repro.core.rekey import RevocationMode
from repro.core.system import build_system
from repro.crypto.drbg import HmacDrbg
from repro.sim.figures import PAPER_QUOTED, fig8a, fig8b, fig8c
from repro.util.units import KiB, MiB
from repro.workloads.synthetic import unique_data


def system_with_file(file_bytes, users, tag):
    system = build_system(
        num_data_servers=1,
        chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
        rng=HmacDrbg(tag),
    )
    owner = system.new_client("owner", cache_bytes=32 * MiB)
    policy = FilePolicy.for_users(["owner"] + [f"user{i}" for i in range(users - 1)])
    owner.upload("target", unique_data(file_bytes, seed=8), policy=policy)
    return system, owner, policy


@pytest.mark.parametrize("users", [100, 300, 500])
@pytest.mark.parametrize("mode", [RevocationMode.LAZY, RevocationMode.ACTIVE])
def test_fig8a_rekey_vs_users(benchmark, users, mode):
    _system, owner, policy = system_with_file(1 * MiB, users, b"fig8a")
    revoked = {f"user{i}" for i in range(int((users - 1) * 0.2))}
    new_policy = policy.without_users(revoked)

    def rekey():
        return owner.rekey("target", new_policy, mode)

    result = benchmark(rekey)
    assert result.new_policy_text == new_policy.text
    benchmark.extra_info["users"] = users
    benchmark.extra_info["mode"] = mode.value
    save_result(
        "fig8",
        f"real fig8a: users={users} mode={mode.value} "
        f"-> {benchmark.stats['mean'] * 1e3:.2f} ms",
    )


@pytest.mark.parametrize("ratio", [0.1, 0.3, 0.5])
def test_fig8b_rekey_vs_revocation_ratio(benchmark, ratio):
    _system, owner, policy = system_with_file(1 * MiB, 200, b"fig8b")
    revoked = {f"user{i}" for i in range(int(199 * ratio))}
    new_policy = policy.without_users(revoked)

    benchmark(lambda: owner.rekey("target", new_policy, RevocationMode.LAZY))
    benchmark.extra_info["ratio"] = ratio
    save_result(
        "fig8",
        f"real fig8b: ratio={ratio} -> {benchmark.stats['mean'] * 1e3:.2f} ms",
    )


@pytest.mark.parametrize("file_mib", [1, 4, 16])
@pytest.mark.parametrize("mode", [RevocationMode.LAZY, RevocationMode.ACTIVE])
def test_fig8c_rekey_vs_file_size(benchmark, file_mib, mode):
    _system, owner, policy = system_with_file(file_mib * MiB, 50, b"fig8c")
    new_policy = policy.without_users({f"user{i}" for i in range(10)})

    benchmark(lambda: owner.rekey("target", new_policy, mode))
    benchmark.extra_info["file_mib"] = file_mib
    benchmark.extra_info["mode"] = mode.value
    save_result(
        "fig8",
        f"real fig8c: file={file_mib}MiB mode={mode.value} "
        f"-> {benchmark.stats['mean'] * 1e3:.2f} ms",
    )


def test_fig8_real_shapes():
    """Assert the paper's qualitative claims on the real implementation."""
    # (a) delay grows with authorized users (policy encryption is per leaf).
    times = {}
    for users in (50, 400):
        _s, owner, policy = system_with_file(1 * MiB, users, b"shape-a")
        start = time.perf_counter()
        owner.rekey("target", policy, RevocationMode.LAZY)
        times[users] = time.perf_counter() - start
    assert times[400] > times[50]

    # (c) lazy flat in file size, active grows.
    lazy, active = {}, {}
    for file_mib in (1, 16):
        _s, owner, policy = system_with_file(file_mib * MiB, 20, b"shape-c")
        start = time.perf_counter()
        owner.rekey("target", policy, RevocationMode.LAZY)
        lazy[file_mib] = time.perf_counter() - start
        start = time.perf_counter()
        owner.rekey("target", policy, RevocationMode.ACTIVE)
        active[file_mib] = time.perf_counter() - start
    assert active[16] > active[1]
    # Lazy does not touch the stub file: its cost must not scale 16x.
    assert lazy[16] < lazy[1] * 8
    save_result(
        "fig8",
        "real shapes: rekey(users 50->400): "
        f"{times[50] * 1e3:.1f}->{times[400] * 1e3:.1f} ms; "
        f"active(1->16MiB): {active[1] * 1e3:.1f}->{active[16] * 1e3:.1f} ms; "
        f"lazy(1->16MiB): {lazy[1] * 1e3:.1f}->{lazy[16] * 1e3:.1f} ms",
    )


def test_fig8_model_series(benchmark):
    def generate():
        return fig8a() + fig8b() + fig8c()

    series = benchmark(generate)
    record_series(
        "fig8",
        series,
        preamble=(
            "Figure 8 (model, paper scale) — paper quotes: lazy "
            f"{PAPER_QUOTED['fig8c.lazy']} s (2GB/500 users/20%), active "
            f"{PAPER_QUOTED['fig8c.active@8GB']} s @8GB, "
            f"{PAPER_QUOTED['fig8b.lazy@50%']}/{PAPER_QUOTED['fig8b.active@50%']} s @50%"
        ),
    )
    lazy_c = next(s for s in series if s.figure == "8c" and s.label == "lazy")
    active_c = next(s for s in series if s.figure == "8c" and s.label == "active")
    assert lazy_c.y_at(2) == pytest.approx(2.25, rel=0.08)
    assert active_c.y_at(8) == pytest.approx(3.4, rel=0.08)
