"""Hot-path acceleration benchmark: reference vs. accelerated engines.

Measures the four layers the acceleration pass touches —

* **chunking** — Rabin content-defined chunking, per engine
  (``reference`` / ``scan`` / ``numpy``);
* **ctr** — AES-CTR keystream generation, per engine
  (``reference`` / ``ttable`` / ``numpy``);
* **caont** — the CAONT chunk transform (enhanced scheme) with the
  reference CTR engine pinned vs. the auto-dispatched fast path;
* **upload** — end-to-end client upload against an in-process system,
  reference engines vs. accelerated defaults;
* **upload_tcp** — end-to-end upload over a real localhost TCP cluster,
  per-chunk RPCs vs. the batched pipeline, recording round trips per
  layer alongside throughput;
* **download_tcp** — end-to-end restore over a 4-shard localhost TCP
  cluster: serial fetch/decrypt vs. the parallel restore pipeline
  (shard scatter-gather + process-pool CAONT inversion + prefetch
  overlap), plus a warm-chunk-cache pass that serves every trimmed
  package locally;
* **replicated_tcp** — upload + restore over a 3-node localhost TCP
  cluster at R=1 (ring placement, single copy) vs. R=2 (every chunk on
  two ring owners, write quorum 1): the recorded ``overhead_vs_r1``
  ratio on the R=2 rows is the price of replication, and the R=2
  store round trips show writes fanning out to both owners;
* **rekey_tcp** — active group rekey over a 4-shard localhost TCP
  cluster: the serial per-file reference path (~5 round trips per
  member file) vs. the batched rekey pipeline (one batch RPC per stage
  per window plus parallel stub re-encryption), recording store and
  keystore round trips alongside wall time;
* **concurrent_tcp** — 100+ concurrent clients hammering ONE node with
  latency-bound requests: the legacy thread-per-connection server
  (16 workers, each owning a connection until its client hangs up) vs.
  the asyncio-multiplexed server (connections decoupled from handler
  threads), recording aggregate request throughput and the
  per-client completion spread (the starvation signature);
* **gc_compaction** — the locality-aware container engine: a cold
  128-chunk restore over TCP recording container fetches per container
  (the coalesced batch-read path fetches each container exactly once),
  a delete → compact → verify churn cycle recording the fraction of
  dead container bytes reclaimed, and an in-process compressed-store
  pass recording the per-container compression ratio —

and writes machine-readable ``BENCH_hotpath.json`` at the repo root so
future PRs can track the perf trajectory.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick] [--out PATH]

``--quick`` shrinks the inputs so the whole run takes ~a second (used by
the tier-1 smoke test); full-size runs take a couple of minutes on the
pure-Python reference paths.

This file is executable-only: it deliberately defines no ``test_*``
functions (``pyproject.toml`` collects ``bench_*.py``), and the pytest
entry point lives in ``tests/integration/test_bench_hotpath.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.chunking.rabin import available_chunking_engines, rabin_chunks  # noqa: E402
from repro.core.system import build_system  # noqa: E402
from repro.crypto import modes  # noqa: E402
from repro.crypto.aes import AES  # noqa: E402
from repro.crypto.cipher import get_cipher  # noqa: E402
from repro.crypto.drbg import HmacDrbg  # noqa: E402
from repro.obs.expo import parse_prometheus, render_prometheus  # noqa: E402
from repro.obs.metrics import MetricsRegistry  # noqa: E402

SCHEMA = "reed-bench-hotpath/6"

#: Every timed repeat lands in ``bench_seconds{bench=...}`` here, so the
#: numbers the report prints are the same ones a scrape would export.
BENCH_METRICS = MetricsRegistry()

#: Wide bucket spread: benchmark repeats range from sub-millisecond
#: (quick CTR runs) to minutes (full reference chunking).
_BENCH_BUCKETS = tuple(
    base * scale for scale in (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0) for base in (1, 2.5, 5)
)


def _bench_histogram():
    return BENCH_METRICS.histogram(
        "bench_seconds",
        "Wall time of one benchmark repeat, by benchmark name.",
        buckets=_BENCH_BUCKETS,
        labelnames=("bench",),
    )


def _seed_rng(tag: str, seed: int) -> HmacDrbg:
    """A deterministic byte stream bound to (tag, --seed)."""
    return HmacDrbg(f"{tag}/{seed}".encode())


def _mib_per_s(num_bytes: int, seconds: float) -> float:
    if seconds <= 0:
        return float("inf")
    return num_bytes / (1024 * 1024) / seconds


def _time(fn, repeats: int, name: str) -> float:
    """Best-of-N wall time after one untimed warm-up call.

    The warm-up absorbs one-time lazy costs (numpy table builds, key
    schedule caches) so the steady-state throughput is what's reported;
    best-of suppresses scheduler noise.  Every timed repeat is recorded
    into ``bench_seconds{bench=name}``; the return value is that
    histogram child's observed minimum, so the report and the metrics
    snapshot cannot disagree.
    """
    child = _bench_histogram().labels(bench=name)
    fn()
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        child.observe(time.perf_counter() - start)
    return child.minimum


def _quantiles(name: str) -> dict:
    """p50/p99 of the repeats recorded for one benchmark row.

    Interpolated from the ``bench_seconds{bench=name}`` histogram child
    (clamped to the observed min/max, so few-repeat runs stay sane) —
    the tail-latency companions to the best-of ``seconds`` value.
    """
    child = _bench_histogram().labels(bench=name)
    return {"p50_s": child.quantile(0.5), "p99_s": child.quantile(0.99)}


def bench_chunking(data: bytes, repeats: int) -> list[dict]:
    results = []
    for engine in available_chunking_engines():
        def run(engine=engine):
            for _ in rabin_chunks(data, min_size=512, max_size=4096, avg_size=1024, engine=engine):
                pass

        seconds = _time(run, repeats, f"chunking/{engine}")
        results.append(
            {
                "name": f"chunking/{engine}",
                "bytes": len(data),
                "seconds": seconds,
                "mib_per_s": _mib_per_s(len(data), seconds),
            }
        )
    return results


def bench_ctr(data_len: int, repeats: int) -> list[dict]:
    key = bytes(range(32))
    aes = AES(key)
    results = []
    for engine in modes.available_ctr_engines():
        def run(engine=engine):
            modes.ctr_keystream(aes, modes.ZERO_NONCE, data_len, engine=engine)

        seconds = _time(run, repeats, f"ctr/{engine}")
        results.append(
            {
                "name": f"ctr/{engine}",
                "bytes": data_len,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(data_len, seconds),
            }
        )
    return results


def bench_caont(chunk_size: int, chunk_count: int, repeats: int, seed: int) -> list[dict]:
    """CAONT transform under AES-256: reference CTR vs. fast dispatch.

    The cipher's ``mask``/``deterministic_encrypt`` go through
    ``ctr_keystream``, so pinning the dispatcher's default engine
    exercises exactly the paths the client uses.
    """
    from repro.core.schemes import get_scheme

    rng = _seed_rng("bench-caont", seed)
    chunks = [rng.random_bytes(chunk_size) for _ in range(chunk_count)]
    keys = [rng.random_bytes(32) for _ in range(chunk_count)]
    scheme = get_scheme("enhanced", cipher=get_cipher("aes256"))
    total = chunk_size * chunk_count
    results = []
    for label, engines in (("reference", ("reference",)), ("accelerated", (None,))):
        engine = engines[0]

        def run(engine=engine):
            if engine is None:
                for chunk, key in zip(chunks, keys):
                    scheme.encrypt_chunk(chunk, key)
            else:
                original = modes.ctr_keystream
                try:
                    modes.ctr_keystream = (
                        lambda aes, nonce, length, engine=None, _o=original: _o(
                            aes, nonce, length, "reference"
                        )
                    )
                    for chunk, key in zip(chunks, keys):
                        scheme.encrypt_chunk(chunk, key)
                finally:
                    modes.ctr_keystream = original

        seconds = _time(run, repeats, f"caont/{label}")
        results.append(
            {
                "name": f"caont/{label}",
                "bytes": total,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(total, seconds),
            }
        )
    return results


def bench_upload(file_bytes: int, repeats: int, seed: int) -> list[dict]:
    """End-to-end upload: reference engines vs. accelerated defaults."""
    from repro.chunking.chunker import ChunkingSpec

    rng = _seed_rng("bench-upload", seed)
    data = rng.random_bytes(file_bytes)
    results = []
    configs = (
        ("reference", ChunkingSpec(avg_size=1024, min_size=512, max_size=4096, engine="reference"), "reference"),
        ("accelerated", ChunkingSpec(avg_size=1024, min_size=512, max_size=4096), None),
    )
    for label, spec, ctr_engine in configs:
        counter = [0]

        def run(spec=spec, ctr_engine=ctr_engine):
            original = modes.ctr_keystream
            try:
                if ctr_engine is not None:
                    modes.ctr_keystream = (
                        lambda aes, nonce, length, engine=None, _o=original: _o(
                            aes, nonce, length, ctr_engine
                        )
                    )
                system = build_system(
                    num_data_servers=1, cipher_name="aes256", chunking=spec
                )
                client = system.new_client("bench-user", cache_bytes=1 << 22)
                counter[0] += 1
                client.upload(f"file-{counter[0]}", data)
                client.close()
            finally:
                modes.ctr_keystream = original

        seconds = _time(run, repeats, f"upload/{label}")
        results.append(
            {
                "name": f"upload/{label}",
                "bytes": file_bytes,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(file_bytes, seconds),
            }
        )
    return results


def bench_upload_tcp(file_bytes: int, repeats: int, seed: int) -> list[dict]:
    """Upload over localhost TCP: per-chunk round trips vs. the batched
    pipeline (``derive_batch`` + per-shard ``put_many`` + pipelining).

    Each timed run uploads fresh (undeduplicatable) data with a cold
    client, so the two configurations pay identical crypto and storage
    costs and differ only in how the bytes travel.
    """
    from repro.chunking.chunker import ChunkingSpec
    from repro.core.cluster import TcpCluster

    rng = _seed_rng("bench-upload-tcp", seed)
    chunking = ChunkingSpec(method="fixed", avg_size=4096)
    configs = (
        # Per-chunk: one fingerprint per key RPC, one chunk per store
        # batch, no overlap — the O(chunks) round-trip reference path.
        ("per_chunk", {"key_batch_size": 1, "upload_batch_bytes": 1, "pipeline_depth": 1}),
        # Batched: whole-file key derivation, 4 MB store batches,
        # store/encrypt overlap — the protocol this PR adds.
        ("batched", {}),
    )
    results = []
    with TcpCluster(num_data_servers=2, chunking=chunking, rng=rng) as cluster:
        for label, kwargs in configs:
            state = {"counter": 0, "last": None}

            def run(label=label, kwargs=kwargs, state=state):
                state["counter"] += 1
                data = rng.random_bytes(file_bytes)
                client = cluster.new_client(
                    f"bench-{label}-{state['counter']}", encryption_workers=1, **kwargs
                )
                state["last"] = client.upload(f"file-{label}-{state['counter']}", data)
                client.close()

            seconds = _time(run, repeats, f"upload_tcp/{label}")
            upload = state["last"]
            results.append(
                {
                    "name": f"upload_tcp/{label}",
                    "bytes": file_bytes,
                    "seconds": seconds,
                    "mib_per_s": _mib_per_s(file_bytes, seconds),
                    "chunks": upload.chunk_count,
                    "key_round_trips": upload.key_round_trips,
                    "store_round_trips": upload.store_round_trips,
                    "upload_batches": upload.upload_batches,
                    **_quantiles(f"upload_tcp/{label}"),
                }
            )
    return results


def bench_download_tcp(file_bytes: int, repeats: int, seed: int) -> list[dict]:
    """Restore over localhost TCP: serial per-chunk vs. the pipeline.

    One client uploads a fixed-chunk file to a 4-shard cluster; then
    three download configurations restore it:

    * ``serial`` — the chunk-at-a-time restore protocol: one storage
      round trip per chunk, one shard sub-fetch at a time, one decrypt
      core, no prefetch overlap, no cache (the download twin of
      ``upload_tcp/per_chunk``);
    * ``pipelined`` — windowed fetches, concurrent shard
      scatter-gather, process-pool CAONT inversion, and fetch/decrypt
      overlap (the defaults);
    * ``cache_warm`` — pipelined plus a chunk cache big enough for the
      whole file: the untimed warm-up download fills it, so the timed
      repeats serve every trimmed package locally with zero
      ``chunk_get_batch`` RPCs.

    Like ``upload_tcp``, loopback throughput undersells the protocol
    win (RTT is microseconds and this box may have a single core, which
    serializes the decrypt fan-out) — the latency-independent evidence
    is the recorded counters: per-chunk restore pays one store round
    trip per chunk, the pipeline a handful per file.  Every
    configuration's restored plaintext is asserted bit-identical to the
    uploaded bytes.
    """
    from repro.chunking.chunker import ChunkingSpec
    from repro.core.cluster import TcpCluster

    rng = _seed_rng("bench-download-tcp", seed)
    chunking = ChunkingSpec(method="fixed", avg_size=4096)
    data = rng.random_bytes(file_bytes)
    file_id = "bench-download-file"
    user = "bench-download"
    results = []
    with TcpCluster(num_data_servers=4, chunking=chunking, rng=rng) as cluster:
        uploader = cluster.new_client(user)
        uploader.upload(file_id, data)
        uploader.close()
        configs = (
            (
                "serial",
                {"pipeline_depth": 1, "encryption_workers": 1, "fetch_workers": 1},
                {"fetch_batch_chunks": 1},
            ),
            ("pipelined", {}, {}),
            ("cache_warm", {"chunk_cache_bytes": 64 * 1024 * 1024}, {}),
        )
        for label, kwargs, download_kwargs in configs:
            client = cluster.new_client(user, **kwargs)
            state = {"last": None}

            def run(client=client, state=state, download_kwargs=download_kwargs):
                state["last"] = client.download(file_id, **download_kwargs)

            seconds = _time(run, repeats, f"download_tcp/{label}")
            download = state["last"]
            if download.data != data:
                raise AssertionError(
                    f"download_tcp/{label}: restored plaintext differs from input"
                )
            lookups = download.chunk_cache_hits + download.chunk_cache_misses
            results.append(
                {
                    "name": f"download_tcp/{label}",
                    "bytes": file_bytes,
                    "seconds": seconds,
                    "mib_per_s": _mib_per_s(file_bytes, seconds),
                    "chunks": download.chunk_count,
                    "store_round_trips": download.store_round_trips,
                    "fetch_batches": download.fetch_batches,
                    "chunk_cache_hits": download.chunk_cache_hits,
                    "chunk_cache_misses": download.chunk_cache_misses,
                    "cache_hit_rate": round(download.chunk_cache_hits / lookups, 4)
                    if lookups
                    else 0.0,
                    **_quantiles(f"download_tcp/{label}"),
                }
            )
            client.close()
    return results


def bench_replicated_tcp(file_bytes: int, repeats: int, seed: int) -> list[dict]:
    """Replication overhead over localhost TCP: R=1 vs R=2.

    The same 3-node cluster topology runs twice: once with single-copy
    ring placement (R=1) and once with every chunk, recipe, and stub on
    its first two ring owners (R=2, write quorum 1).  Each repeat
    uploads fresh (undeduplicatable) data and restores it, so the two
    configurations pay identical crypto and differ only in replica
    fan-out.  The ``overhead_vs_r1`` ratio on the R=2 rows is the cost
    of the durability: writes ship every chunk twice (watch the store
    round trips roughly double), reads still fetch each chunk once from
    its primary.
    """
    from repro.chunking.chunker import ChunkingSpec
    from repro.core.cluster import TcpCluster

    rng = _seed_rng("bench-replicated-tcp", seed)
    chunking = ChunkingSpec(method="fixed", avg_size=4096)
    results = []
    baseline: dict[str, float] = {}
    for replicas in (1, 2):
        label = f"r{replicas}"
        with TcpCluster(
            num_data_servers=3, replicas=replicas, chunking=chunking, rng=rng
        ) as cluster:
            state = {"counter": 0, "upload": None, "download": None}

            def run_upload(cluster=cluster, label=label, state=state):
                state["counter"] += 1
                data = rng.random_bytes(file_bytes)
                client = cluster.new_client(
                    f"bench-{label}-{state['counter']}", encryption_workers=1
                )
                state["upload"] = client.upload(
                    f"file-{label}-{state['counter']}", data
                )
                state["data"] = data
                client.close()

            seconds = _time(run_upload, repeats, f"replicated_tcp/upload_{label}")
            upload = state["upload"]
            row = {
                "name": f"replicated_tcp/upload_{label}",
                "bytes": file_bytes,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(file_bytes, seconds),
                "replicas": replicas,
                "chunks": upload.chunk_count,
                "store_round_trips": upload.store_round_trips,
            }
            if replicas == 1:
                baseline["upload"] = seconds
            else:
                row["overhead_vs_r1"] = round(seconds / baseline["upload"], 2)
            results.append(row)

            # Restore the last uploaded file with a fresh cold client.
            reader = cluster.new_client(
                f"bench-{label}-{state['counter']}", encryption_workers=1
            )
            file_id = f"file-{label}-{state['counter']}"

            def run_download(reader=reader, file_id=file_id, state=state):
                state["download"] = reader.download(file_id)

            seconds = _time(
                run_download, repeats, f"replicated_tcp/download_{label}"
            )
            download = state["download"]
            reader.close()
            if download.data != state["data"]:
                raise AssertionError(
                    f"replicated_tcp/download_{label}: restored plaintext "
                    f"differs from input"
                )
            row = {
                "name": f"replicated_tcp/download_{label}",
                "bytes": file_bytes,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(file_bytes, seconds),
                "replicas": replicas,
                "chunks": download.chunk_count,
                "store_round_trips": download.store_round_trips,
            }
            if replicas == 1:
                baseline["download"] = seconds
            else:
                row["overhead_vs_r1"] = round(
                    seconds / baseline["download"], 2
                )
            results.append(row)
    return results


def bench_rekey_tcp(
    group_files: int, file_bytes: int, batch_size: int, repeats: int, seed: int
) -> list[dict]:
    """Active group rekey over localhost TCP: serial vs. pipelined.

    One owner builds a group of ``group_files`` member files on a
    4-shard cluster, then revokes access twice per timed repeat style:

    * ``serial`` — the per-file reference path: each member costs a
      keystore get, a recipe get, a stub get, a stub put, a recipe put,
      and a keystore put (~5 storage/keystore round trips per file);
    * ``pipelined`` — the batched :class:`RekeyPipeline`: member files
      travel in windows of ``batch_size``, one batch RPC per stage per
      window, stub re-encryption fanned out across the rekey workers.

    Every repeat performs a real ACTIVE rekey (key regression makes
    them repeatable — each run just winds the group chain one version
    further), so both rows pay identical crypto and differ only in
    round-trip structure.  As with the other ``*_tcp`` families,
    loopback RTT undersells the win; the latency-independent evidence
    is the recorded ``store_round_trips`` / ``keystore_round_trips``.
    """
    from repro.chunking.chunker import ChunkingSpec
    from repro.core.cluster import TcpCluster
    from repro.core.groups import GroupManager
    from repro.core.policy import FilePolicy
    from repro.core.rekey import RevocationMode

    rng = _seed_rng("bench-rekey-tcp", seed)
    chunking = ChunkingSpec(method="fixed", avg_size=4096)
    group_id = "bench-rekey-group"
    policy = FilePolicy.for_users(["bench-rekey-owner", "bench-rekey-reader"])
    results = []
    with TcpCluster(num_data_servers=4, chunking=chunking, rng=rng) as cluster:
        owner = cluster.new_client(
            "bench-rekey-owner", rekey_batch_size=batch_size
        )
        groups = GroupManager(owner)
        groups.create_group(group_id, policy)
        for index in range(group_files):
            groups.upload(
                group_id, f"bench-rekey-{index}", rng.random_bytes(file_bytes)
            )
        for label, pipelined in (("serial", False), ("pipelined", True)):
            state = {"last": None}

            def run(pipelined=pipelined, state=state):
                state["last"] = groups.rekey(
                    group_id, policy, RevocationMode.ACTIVE, pipelined=pipelined
                )

            seconds = _time(run, repeats, f"rekey_tcp/{label}")
            rekey = state["last"]
            if rekey.files_rewrapped != group_files:
                raise AssertionError(
                    f"rekey_tcp/{label}: rewrapped {rekey.files_rewrapped} "
                    f"of {group_files} member files"
                )
            results.append(
                {
                    "name": f"rekey_tcp/{label}",
                    "bytes": rekey.stub_bytes_reencrypted,
                    "seconds": seconds,
                    "mib_per_s": _mib_per_s(rekey.stub_bytes_reencrypted, seconds),
                    "files": rekey.files_rewrapped,
                    "store_round_trips": rekey.store_round_trips,
                    "keystore_round_trips": rekey.keystore_round_trips,
                    "batches": rekey.batches,
                    "workers": rekey.workers,
                    "abe_operations": rekey.abe_operations,
                    **_quantiles(f"rekey_tcp/{label}"),
                }
            )
        owner.close()
    return results


def bench_concurrent_tcp(
    clients: int, calls: int, delay_s: float, repeats: int, seed: int
) -> list[dict]:
    """100+ concurrent clients against ONE node: threaded vs. multiplexed.

    Every client thread opens its own persistent connection and issues
    ``calls`` latency-bound requests (the handler sleeps ``delay_s`` to
    model backend/disk latency, releasing the GIL exactly like real I/O
    does).  The two servers get identical hardware but embody the two
    architectures:

    * ``threaded`` — the legacy thread-per-connection server with the
      default 16-worker pool: a worker *owns* a connection until its
      client disconnects, so only 16 of the N clients make progress at
      any moment and the rest starve in the accept queue (watch
      ``client_spread_s``: the last client finishes a full pool-rotation
      after the first);
    * ``multiplexed`` — the asyncio server: all N connections stay live
      on one event loop, requests dispatch to a bounded handler
      executor as they arrive, responses return out of order.  Handler
      threads are sized to the node (not to the connection count), so
      aggregate throughput scales with handler parallelism instead of
      being capped by connection ownership.

    Reported ``seconds`` is the whole storm (connect + all requests +
    disconnect for every client); ``requests_per_s`` is the aggregate
    rate the node sustained; ``client_spread_s`` is last-client-done
    minus first-client-done — flat for a fair scheduler, a full
    rotation-length tail under connection ownership.
    """
    import threading

    from repro.net.rpc import ServiceRegistry
    from repro.net.tcp import TcpConnection, TcpServer, ThreadedTcpServer

    payload = _seed_rng("bench-concurrent-tcp", seed).random_bytes(256)

    def make_registry():
        registry = ServiceRegistry()

        def work(request: bytes) -> bytes:
            time.sleep(delay_s)  # models backend latency; releases the GIL
            return request

        registry.register("storage.work", work)
        return registry

    def storm(address) -> tuple[float, float]:
        """Run the full client storm; returns (seconds, completion spread)."""
        barrier = threading.Barrier(clients + 1)
        done: list[float] = []
        errors: list[Exception] = []
        lock = threading.Lock()

        def one_client() -> None:
            try:
                connection = TcpConnection(*address)
                try:
                    client = connection.client()
                    barrier.wait(timeout=30.0)
                    for _ in range(calls):
                        if client.call("storage.work", payload) != payload:
                            raise AssertionError("payload corrupted in flight")
                finally:
                    connection.close()
                with lock:
                    done.append(time.perf_counter())
            except Exception as exc:  # surfaced after the join below
                with lock:
                    errors.append(exc)
                try:
                    barrier.abort()
                except threading.BrokenBarrierError:
                    pass

        threads = [threading.Thread(target=one_client) for _ in range(clients)]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30.0)
        start = time.perf_counter()
        for thread in threads:
            thread.join(timeout=120.0)
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        if len(done) != clients:
            raise AssertionError(f"only {len(done)}/{clients} clients finished")
        return elapsed, max(done) - min(done)

    results = []
    total_requests = clients * calls
    total_bytes = total_requests * len(payload)
    configs = (
        # The legacy coupling: worker count == concurrently-served
        # connections, at the old default pool size.
        ("threaded", lambda: ThreadedTcpServer(make_registry())),
        # Decoupled: the event loop holds every connection; the handler
        # executor is sized for the node's latency-bound work.
        ("multiplexed", lambda: TcpServer(make_registry(), max_workers=64)),
    )
    for label, make_server in configs:
        state = {"spread": 0.0}
        server = make_server()
        server.start()
        try:

            def run(server=server, state=state):
                _, state["spread"] = storm(server.address)

            seconds = _time(run, repeats, f"concurrent_tcp/{label}")
        finally:
            server.stop(drain=True)
        results.append(
            {
                "name": f"concurrent_tcp/{label}",
                "bytes": total_bytes,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(total_bytes, seconds),
                "clients": clients,
                "calls_per_client": calls,
                "requests": total_requests,
                "requests_per_s": round(total_requests / seconds, 1),
                "handler_delay_ms": delay_s * 1000,
                "client_spread_s": round(state["spread"], 4),
            }
        )
    return results


def bench_gc_compaction(file_bytes: int, repeats: int, seed: int) -> list[dict]:
    """The locality-aware container engine: coalesced cold restores,
    compaction reclaim, and per-container compression.

    Three rows over a 2-node localhost TCP cluster (plus one in-process
    engine pass):

    * ``cold_restore`` — every timed repeat restores a file no server
      has read before, so each download hits sealed containers cold.
      The coalesced batch-read path (``DataStore.get_many`` →
      ``ContainerStore.read_many``) fetches each distinct container
      exactly once; the recorded ``fetches_per_container`` stays ~1.0
      where a chunk-at-a-time reader would pay one fetch per chunk.
    * ``reclaim`` — each repeat uploads a doomed file ``A||B`` and a
      kept file ``B`` (fixed-size chunking dedups the shared half),
      deletes the doomed file (stranding A's chunks as dead space in
      containers B still lives in), runs a compaction pass over the
      ``storage.gc`` RPC, and verifies the kept file restores
      bit-identically from its relocated chunks.  ``reclaim_fraction``
      is the share of dead bytes the pass recovered (>= 0.9 expected).
    * ``compressed_store`` — an in-process :class:`DataStore` ingests
      compressible chunks and reads them all back through the batch
      path; the row records the container compression ratio (the TCP
      rows store encrypted, incompressible payloads, so the codec's
      win only shows on data that can compress).
    """
    from repro.chunking.chunker import ChunkingSpec
    from repro.core.cluster import TcpCluster
    from repro.crypto.hashing import fingerprint as _fingerprint
    from repro.storage.datastore import DataStore

    rng = _seed_rng("bench-gc-compaction", seed)
    chunking = ChunkingSpec(method="fixed", avg_size=4096)
    results = []
    with TcpCluster(
        num_data_servers=2, chunking=chunking, rng=rng, gc_threshold=0.2
    ) as cluster:
        stores = [server.store for server in cluster.servers]

        def total_fetches() -> int:
            return sum(s.containers.container_fetches for s in stores)

        # -- cold_restore: one never-read file per _time call ------------
        uploader = cluster.new_client("bench-gc-uploader")
        files = []
        for index in range(repeats + 1):  # one per warm-up + timed repeat
            payload = rng.random_bytes(file_bytes)
            uploader.upload(f"gc-cold-{index}", payload)
            files.append((f"gc-cold-{index}", payload))
        uploader.close()
        containers = sum(len(s.containers.sealed_container_ids()) for s in stores)
        reader = cluster.new_client("bench-gc-uploader")
        state: dict = {"index": 0, "last": None}

        def run_cold(reader=reader, state=state):
            file_id, _ = files[state["index"] % len(files)]
            state["index"] += 1
            state["last"] = reader.download(file_id)

        fetches_before = total_fetches()
        seconds = _time(run_cold, repeats, "gc_compaction/cold_restore")
        cold_fetches = total_fetches() - fetches_before
        last_id, last_payload = files[(state["index"] - 1) % len(files)]
        if state["last"].data != last_payload:
            raise AssertionError(f"gc_compaction/cold_restore: {last_id} corrupted")
        reader.close()
        results.append(
            {
                "name": "gc_compaction/cold_restore",
                "bytes": file_bytes,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(file_bytes, seconds),
                "chunks": state["last"].chunk_count,
                "containers": containers,
                "container_fetches": cold_fetches,
                "fetches_per_container": round(cold_fetches / containers, 2),
                "store_round_trips": state["last"].store_round_trips,
                **_quantiles("gc_compaction/cold_restore"),
            }
        )

        # -- reclaim: delete -> compact -> verify, fresh data each repeat
        half = max(4096, file_bytes // 2)
        client = cluster.new_client("bench-gc-churn")
        churn: dict = {"counter": 0, "status": None, "dead": 0}

        def run_reclaim(client=client, churn=churn):
            churn["counter"] += 1
            tag = churn["counter"]
            block_a = rng.random_bytes(half)
            block_b = rng.random_bytes(half)
            client.upload(f"gc-doomed-{tag}", block_a + block_b)
            client.upload(f"gc-kept-{tag}", block_b)
            client.delete(f"gc-doomed-{tag}")
            before = client.storage.gc_status()
            churn["dead"] = before["dead_bytes"]
            churn["ratio_before"] = before["dead_space_ratio"]
            churn["status"] = client.storage.gc_run()
            if client.download(f"gc-kept-{tag}").data != block_b:
                raise AssertionError(
                    "gc_compaction/reclaim: kept file corrupted by compaction"
                )
            client.delete(f"gc-kept-{tag}")  # leave the cluster clean

        seconds = _time(run_reclaim, repeats, "gc_compaction/reclaim")
        status = churn["status"]
        reclaimed = status["last_reclaimed_bytes"]
        results.append(
            {
                "name": "gc_compaction/reclaim",
                "bytes": reclaimed,
                "seconds": seconds,
                "mib_per_s": _mib_per_s(reclaimed, seconds),
                "dead_bytes": churn["dead"],
                "reclaimed_bytes": reclaimed,
                "reclaim_fraction": round(reclaimed / churn["dead"], 4)
                if churn["dead"]
                else 0.0,
                "dead_ratio_before": round(churn["ratio_before"], 4),
                "dead_ratio_after": round(status["dead_space_ratio"], 4),
                "relocated_chunks": status["last_relocated_chunks"],
                **_quantiles("gc_compaction/reclaim"),
            }
        )
        client.close()

    # -- compressed_store: the codec's win, in-process ------------------
    pattern = rng.random_bytes(512)
    chunk_count = max(16, file_bytes // 4096)
    chunks = [
        (index.to_bytes(4, "big") + pattern * 8)[:4096]
        for index in range(chunk_count)
    ]
    pairs = [(_fingerprint(data), data) for data in chunks]
    total = sum(len(data) for data in chunks)
    comp: dict = {"stats": None}

    def run_compressed(comp=comp):
        store = DataStore(metrics=MetricsRegistry())
        for fp, data in pairs:
            store.put_chunk(fp, data)
        store.flush()
        if store.get_many([fp for fp, _ in pairs]) != chunks:
            raise AssertionError(
                "gc_compaction/compressed_store: round trip corrupted"
            )
        comp["stats"] = store.stats

    seconds = _time(run_compressed, repeats, "gc_compaction/compressed_store")
    stats = comp["stats"]
    results.append(
        {
            "name": "gc_compaction/compressed_store",
            "bytes": total,
            "seconds": seconds,
            "mib_per_s": _mib_per_s(total, seconds),
            "chunks": chunk_count,
            "container_payload_bytes": stats.container_payload_bytes,
            "container_compressed_bytes": stats.container_compressed_bytes,
            "compression_ratio": round(stats.compression_ratio, 2),
            **_quantiles("gc_compaction/compressed_store"),
        }
    )
    return results


def compute_speedups(results: list[dict]) -> dict[str, float]:
    """Accelerated-over-reference ratios per benchmark family."""
    by_name = {r["name"]: r for r in results}
    speedups: dict[str, float] = {}
    pairs = (
        ("chunking", "chunking/reference", ("chunking/numpy", "chunking/scan")),
        ("ctr", "ctr/reference", ("ctr/numpy", "ctr/ttable")),
        ("caont", "caont/reference", ("caont/accelerated",)),
        ("upload", "upload/reference", ("upload/accelerated",)),
        ("upload_tcp", "upload_tcp/per_chunk", ("upload_tcp/batched",)),
        # Replication "speedup" reads below 1.0 by design: it is the
        # R=1-over-R=2 ratio, i.e. the inverse of the upload overhead.
        (
            "replicated_tcp",
            "replicated_tcp/upload_r1",
            ("replicated_tcp/upload_r2",),
        ),
        ("download_tcp", "download_tcp/serial", ("download_tcp/pipelined",)),
        ("rekey_tcp", "rekey_tcp/serial", ("rekey_tcp/pipelined",)),
        (
            "concurrent_tcp",
            "concurrent_tcp/threaded",
            ("concurrent_tcp/multiplexed",),
        ),
    )
    for family, ref_name, fast_names in pairs:
        ref = by_name.get(ref_name)
        fast = next((by_name[n] for n in fast_names if n in by_name), None)
        if ref and fast and fast["seconds"] > 0:
            speedups[family] = round(ref["seconds"] / fast["seconds"], 2)
    return speedups


def run(quick: bool, seed: int = 0, only: list[str] | None = None) -> dict:
    global BENCH_METRICS
    BENCH_METRICS = MetricsRegistry()  # each run reports only its own repeats
    rng = _seed_rng("bench-hotpath", seed)
    if quick:
        chunk_data = rng.random_bytes(96 * 1024)
        ctr_len = 64 * 1024
        caont = (4096, 4)
        upload_bytes = 64 * 1024
        tcp_bytes = 64 * 1024
        download_bytes = 64 * 1024
        rekey = (8, 8 * 1024, 4)  # files, bytes/file, pipeline batch size
        concurrent = (16, 4, 0.002)  # clients, calls/client, handler delay
        repeats = 1
    else:
        chunk_data = rng.random_bytes(4 * 1024 * 1024)
        ctr_len = 1024 * 1024
        caont = (8192, 64)
        upload_bytes = 1024 * 1024
        tcp_bytes = 512 * 1024
        # 128 fixed 4 KiB chunks, matching upload_tcp's full scale: the
        # serial row then pays one store round trip per chunk while the
        # pipeline pays a handful per file.
        download_bytes = 512 * 1024
        # The ISSUE's acceptance scenario: a 64-file group over 4
        # shards, rekeyed in windows of 16 (4 batches per stage).
        rekey = (64, 16 * 1024, 16)
        # The acceptance scenario: 120 concurrent clients, each making
        # 10 latency-bound (20 ms — think a disk seek or a backend hop)
        # calls against ONE node.  The latency must dominate per-request
        # CPU: every party here shares one interpreter, so sub-5ms
        # handlers measure the GIL, not the transport.
        concurrent = (120, 10, 0.02)
        repeats = 3

    families: tuple[tuple[str, object], ...] = (
        ("chunking", lambda: bench_chunking(chunk_data, repeats)),
        ("ctr", lambda: bench_ctr(ctr_len, repeats)),
        ("caont", lambda: bench_caont(*caont, repeats, seed)),
        ("upload", lambda: bench_upload(upload_bytes, repeats, seed)),
        ("upload_tcp", lambda: bench_upload_tcp(tcp_bytes, repeats, seed)),
        (
            "download_tcp",
            lambda: bench_download_tcp(download_bytes, repeats, seed),
        ),
        (
            "replicated_tcp",
            lambda: bench_replicated_tcp(tcp_bytes, repeats, seed),
        ),
        ("rekey_tcp", lambda: bench_rekey_tcp(*rekey, repeats, seed)),
        (
            "concurrent_tcp",
            lambda: bench_concurrent_tcp(*concurrent, repeats, seed),
        ),
        (
            "gc_compaction",
            lambda: bench_gc_compaction(download_bytes, repeats, seed),
        ),
    )
    known = {name for name, _ in families}
    for requested in only or []:
        if requested not in known:
            raise SystemExit(
                f"unknown bench family {requested!r}; choose from {sorted(known)}"
            )
    results: list[dict] = []
    for name, bench in families:
        if only and name not in only:
            continue
        results.extend(bench())
    return {
        "schema": SCHEMA,
        "quick": quick,
        "seed": seed,
        "python": sys.version.split()[0],
        "results": results,
        "speedups": compute_speedups(results),
        "metrics": BENCH_METRICS.snapshot(),
    }


def check_metrics_snapshot(report: dict) -> None:
    """Assert the run's metrics exposition is well-formed (smoke mode).

    Renders ``BENCH_METRICS`` to Prometheus text, re-parses it (the
    parser rejects NaN and malformed lines), and checks that every
    reported benchmark has a ``bench_seconds`` series whose observation
    count is positive and whose minimum matches the reported seconds.
    """
    series = parse_prometheus(render_prometheus(BENCH_METRICS))
    for result in report["results"]:
        name = result["name"]
        count = series.get(("bench_seconds_count", frozenset({("bench", name)})))
        if not count or count <= 0:
            raise AssertionError(f"no bench_seconds samples for {name!r}")
        total = series.get(("bench_seconds_sum", frozenset({("bench", name)})))
        if total is None or total < result["seconds"] - 1e-9:
            raise AssertionError(f"bench_seconds_sum inconsistent for {name!r}")
        if "p50_s" in result or "p99_s" in result:
            p50, p99 = result.get("p50_s"), result.get("p99_s")
            if p50 is None or p99 is None:
                raise AssertionError(f"missing latency quantiles for {name!r}")
            # seconds is the best-of (histogram minimum); the clamped
            # bucket interpolation keeps p50 <= p99 within [min, max].
            if not result["seconds"] - 1e-9 <= p50 <= p99 + 1e-9:
                raise AssertionError(
                    f"inconsistent quantiles for {name!r}: "
                    f"min={result['seconds']} p50={p50} p99={p99}"
                )
    snapshot = report["metrics"]
    if "bench_seconds" not in snapshot:
        raise AssertionError("metrics snapshot is missing bench_seconds")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="tiny inputs (smoke-test scale)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="imply --quick and verify the metrics snapshot is well-formed "
        "(the deterministic CI pass)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for every input byte stream (same seed, same bytes)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="FAMILY",
        help="run only this bench family (repeatable, e.g. "
        "--only concurrent_tcp); default is every family",
    )
    parser.add_argument(
        "--out",
        default=os.path.join(REPO_ROOT, "BENCH_hotpath.json"),
        help="output JSON path (default: BENCH_hotpath.json at repo root)",
    )
    args = parser.parse_args(argv)
    report = run(quick=args.quick or args.smoke, seed=args.seed, only=args.only)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    for result in report["results"]:
        print(f"{result['name']:24s} {result['mib_per_s']:10.2f} MiB/s")
    print("speedups:", report["speedups"])
    if args.smoke:
        check_metrics_snapshot(report)
        print("metrics snapshot: well-formed")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
