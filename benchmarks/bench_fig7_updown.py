"""Experiment A.3 / Figure 7: upload and download performance.

Paper setup: a client uploads a 2 GB unique file, uploads it again
(identical content, MLE keys now cached), then downloads it; plus 1-8
clients uploading simultaneously.  Claims:

* first upload is bounded by MLE key generation (Fig. 7a);
* second upload and download approach the effective network speed
  (~108 MB/s of 116 MB/s) because keys are cached and data is deduped
  server-side (Fig. 7a/7b);
* aggregate second-upload throughput scales with clients to ~375 MB/s
  (Fig. 7c).

Real measurement: the full client/server pipeline in process at 8 MB
scale.  The reproducible shape: second upload is much faster than the
first (key generation eliminated), and both schemes converge once keys
are cached.
"""

import pytest

from benchmarks.common import mbps, record_series, save_result
from repro.chunking.chunker import ChunkingSpec
from repro.core.system import build_system
from repro.crypto.drbg import HmacDrbg
from repro.sim.figures import PAPER_QUOTED, fig7a, fig7b, fig7c
from repro.util.units import KiB, MiB
from repro.workloads.synthetic import unique_data

FILE_BYTES = 8 * MiB


def fresh_system(scheme):
    return build_system(
        num_data_servers=4,
        scheme=scheme,
        chunking=ChunkingSpec(method="fixed", avg_size=8 * KiB),
        key_bits=1024,
        rng=HmacDrbg(b"fig7"),
    )


@pytest.mark.parametrize("scheme", ["basic", "enhanced"])
def test_fig7a_first_upload(benchmark, scheme):
    data = unique_data(FILE_BYTES, seed=71)
    counter = [0]

    def setup():
        system = fresh_system(scheme)
        client = system.new_client(f"u{counter[0]}", cache_bytes=64 * MiB)
        counter[0] += 1
        return (client, data), {}

    def first_upload(client, payload):
        return client.upload("file", payload)

    benchmark.pedantic(first_upload, setup=setup, rounds=3)
    rate = mbps(FILE_BYTES, benchmark.stats["mean"])
    benchmark.extra_info["rate_MBps"] = round(rate, 2)
    save_result("fig7", f"real fig7a 1st upload ({scheme}): {rate:.1f} MB/s")


@pytest.mark.parametrize("scheme", ["basic", "enhanced"])
def test_fig7a_second_upload(benchmark, scheme):
    data = unique_data(FILE_BYTES, seed=72)
    counter = [0]

    def setup():
        system = fresh_system(scheme)
        client = system.new_client(f"u{counter[0]}", cache_bytes=64 * MiB)
        counter[0] += 1
        client.upload("file", data)  # primes server dedup + key cache
        return (client, data), {}

    def second_upload(client, payload):
        return client.upload("file-again", payload)

    benchmark.pedantic(second_upload, setup=setup, rounds=3)
    rate = mbps(FILE_BYTES, benchmark.stats["mean"])
    benchmark.extra_info["rate_MBps"] = round(rate, 2)
    save_result("fig7", f"real fig7a 2nd upload ({scheme}): {rate:.1f} MB/s")


@pytest.mark.parametrize("scheme", ["basic", "enhanced"])
def test_fig7b_download(benchmark, scheme):
    data = unique_data(FILE_BYTES, seed=73)
    system = fresh_system(scheme)
    client = system.new_client("downloader", cache_bytes=64 * MiB)
    client.upload("file", data)

    def download():
        return client.download("file")

    result = benchmark(download)
    assert result.data == data
    rate = mbps(FILE_BYTES, benchmark.stats["mean"])
    benchmark.extra_info["rate_MBps"] = round(rate, 2)
    save_result("fig7", f"real fig7b download ({scheme}): {rate:.1f} MB/s")


@pytest.mark.parametrize("clients", [1, 2, 4])
def test_fig7c_aggregate_second_upload(benchmark, clients):
    """N clients uploading already-cached content concurrently."""
    import threading

    data = unique_data(FILE_BYTES // 2, seed=74)

    def setup():
        system = fresh_system("enhanced")
        users = []
        for i in range(clients):
            user = system.new_client(f"c{i}", cache_bytes=64 * MiB)
            user.upload(f"prime-{i}", data)
            users.append(user)
        return (users,), {}

    def aggregate_upload(users):
        threads = [
            threading.Thread(target=u.upload, args=(f"again-{i}", data))
            for i, u in enumerate(users)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    benchmark.pedantic(aggregate_upload, setup=setup, rounds=2)
    rate = mbps(len(data) * clients, benchmark.stats["mean"])
    benchmark.extra_info["aggregate_MBps"] = round(rate, 2)
    save_result("fig7", f"real fig7c aggregate 2nd upload x{clients}: {rate:.1f} MB/s")


def test_fig7_model_series(benchmark):
    def generate():
        return fig7a() + fig7b() + fig7c()

    series = benchmark(generate)
    record_series(
        "fig7",
        series,
        preamble=(
            "Figure 7 (model, paper scale) — paper quotes: 2nd upload "
            f"{PAPER_QUOTED['fig7a.second.basic@16KB']}/"
            f"{PAPER_QUOTED['fig7a.second.enhanced@16KB']} MB/s @16KB; "
            f"download {PAPER_QUOTED['fig7b.basic@8KB+']} MB/s; "
            f"aggregate {PAPER_QUOTED['fig7c.second@8clients']} MB/s @8 clients"
        ),
    )
    second = next(s for s in series if s.label == "basic (2nd)")
    assert second.y_at(16) == pytest.approx(108.1, rel=0.07)
    agg = next(s for s in series if s.label == "Upload (2nd)")
    assert agg.y_at(8) == pytest.approx(374.9, rel=0.05)
