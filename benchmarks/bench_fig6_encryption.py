"""Experiment A.2 / Figure 6: chunk encryption performance.

Paper setup: encrypt 2 GB of unique chunks into trimmed packages + stubs
with two worker threads, varying the average chunk size; basic vs
enhanced.  Claims: throughput grows with chunk size; basic is ~24 %
faster than enhanced at 8 KB (the extra MLE encryption pass).

Real measurement: same pipeline over 4 MB of unique chunks with the
HashCTR cipher (see DESIGN.md §3 — OpenSSL AES at 200+ MB/s is not
reachable in pure Python; the *ratio* and the chunk-size slope are the
reproducible shape).
"""

import pytest

from benchmarks.common import mbps, record_series, save_result
from repro.chunking.chunker import ChunkingSpec, chunk_stream
from repro.core.schemes import get_scheme
from repro.crypto.hashing import sha256
from repro.sim.figures import PAPER_QUOTED, fig6
from repro.util.units import KiB, MiB
from repro.workloads.synthetic import unique_data

DATA_BYTES = 4 * MiB


@pytest.fixture(scope="module")
def corpus():
    """Pre-chunked unique data keyed by chunk size, with MLE keys."""
    out = {}
    data = unique_data(DATA_BYTES, seed=6)
    for chunk_kib in (2, 4, 8, 16):
        spec = ChunkingSpec(method="fixed", avg_size=chunk_kib * KiB)
        chunks = [c.data for c in chunk_stream(data, spec)]
        keys = [sha256(b"mle" + c[:32]) for c in chunks]
        out[chunk_kib] = (chunks, keys)
    return out


@pytest.mark.parametrize("chunk_kib", [2, 4, 8, 16])
@pytest.mark.parametrize("scheme_name", ["basic", "enhanced"])
def test_fig6_encryption_speed(benchmark, corpus, scheme_name, chunk_kib):
    scheme = get_scheme(scheme_name)
    chunks, keys = corpus[chunk_kib]

    def encrypt_all():
        for chunk, key in zip(chunks, keys):
            scheme.encrypt_chunk(chunk, key)

    benchmark(encrypt_all)
    rate = mbps(DATA_BYTES, benchmark.stats["mean"])
    benchmark.extra_info["rate_MBps"] = round(rate, 2)
    save_result(
        "fig6",
        f"real fig6: scheme={scheme_name} chunk={chunk_kib}KB -> {rate:.1f} MB/s",
    )


def test_fig6_real_shape_basic_faster(corpus):
    """Shape check on the real implementation: basic beats enhanced."""
    import time

    rates = {}
    for name in ("basic", "enhanced"):
        scheme = get_scheme(name)
        chunks, keys = corpus[8]
        start = time.perf_counter()
        for chunk, key in zip(chunks, keys):
            scheme.encrypt_chunk(chunk, key)
        rates[name] = DATA_BYTES / (time.perf_counter() - start)
    assert rates["basic"] > rates["enhanced"]
    ratio = rates["basic"] / rates["enhanced"]
    save_result("fig6", f"real fig6: basic/enhanced ratio @8KB = {ratio:.2f} (paper 1.24)")
    # The paper measures 1.24x: with AES-NI the extra deterministic
    # encryption pass of the enhanced scheme is cheap relative to the
    # hashing.  With HashCTR every pass costs the same, so the expected
    # ratio is closer to 2x (enhanced ~= two keystream passes + two
    # hashes vs one + one).  The *direction* (basic faster, gap shrinks
    # as the cipher gets faster) is the reproducible shape.
    assert 1.05 <= ratio <= 2.6


def test_fig6_model_series(benchmark):
    series = benchmark(fig6)
    record_series(
        "fig6",
        series,
        preamble=(
            "Figure 6 (model, paper scale) — paper quotes: basic "
            f"{PAPER_QUOTED['fig6.basic@8KB']} MB/s, enhanced "
            f"{PAPER_QUOTED['fig6.enhanced@8KB']} MB/s @8KB"
        ),
    )
    basic = next(s for s in series if s.label == "basic")
    enhanced = next(s for s in series if s.label == "enhanced")
    assert basic.y_at(8) == pytest.approx(203, rel=0.05)
    assert enhanced.y_at(8) == pytest.approx(155, rel=0.05)
