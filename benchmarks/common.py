"""Shared helpers for the figure benchmarks.

Every ``bench_fig*.py`` produces three kinds of output:

1. **pytest-benchmark timings** of the real implementation at reduced
   scale (pure-Python absolute numbers — see DESIGN.md §3 on why these
   are not the paper's absolute numbers);
2. a **derived throughput/ratio** for the real run, attached to the
   benchmark's ``extra_info`` and appended to ``benchmarks/results/``;
3. the **calibrated-model series at paper scale** (via
   :mod:`repro.sim.figures`), printed next to the values the paper
   quotes so shape and crossover comparisons are one glance away.
"""

from __future__ import annotations

import os

from repro.sim.figures import Series, format_series_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def save_result(name: str, text: str) -> str:
    """Append a result block to ``benchmarks/results/<name>.txt``."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "a") as handle:
        handle.write(text.rstrip() + "\n")
    return path


def record_series(name: str, series_list: list[Series], preamble: str = "") -> None:
    """Persist a model-series table for a figure and echo it."""
    text = (preamble + "\n" if preamble else "") + format_series_table(series_list)
    save_result(name, text)
    print("\n" + text)


def mbps(num_bytes: int, seconds: float) -> float:
    """Throughput in MB/s (binary), guarded against zero timings."""
    if seconds <= 0:
        return float("inf")
    return num_bytes / (1024 * 1024) / seconds
