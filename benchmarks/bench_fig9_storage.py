"""Experiment B.1 / Figure 9: storage overhead on the Fslhomes trace.

Paper setup: replay 147 daily backups of nine users (56.20 TB logical)
and account three data types: logical data, stub data (encrypted, never
deduplicated, 64 B/chunk), and physical data (unique trimmed packages).
Claims: total saving 98.6 %; after 147 days, 431.89 GB physical vs
380.14 GB stub data.

Real measurement: the calibrated trace generator at reduced scale,
replayed two ways —

* full 147 days through the dedup accounting (fingerprint-level, the
  same computation the paper's figure reports), and
* a shorter prefix through the *real* storage engine (actual trimmed
  packages in actual containers) to validate that the accounting
  matches what the data store measures.

Ratios are scale-invariant, so the reduced-scale run reproduces the
paper's percentages directly.
"""

import pytest

from benchmarks.common import save_result
from repro.core.schemes import STUB_SIZE
from repro.storage.datastore import DataStore
from repro.workloads.fsl import (
    PAPER_PHYSICAL_GB,
    PAPER_STUB_GB,
    PAPER_TOTAL_SAVING,
    FslhomesGenerator,
    FslParameters,
    chunk_bytes_from_fingerprint,
)

FULL_PARAMS = FslParameters(scale=1e-5)
ENGINE_PARAMS = FslParameters(scale=2e-6, days=15)


def replay_accounting(params):
    """Fingerprint-level replay: cumulative (logical, physical, stub)."""
    from repro.workloads.replay import replay_dedup_accounting

    series = replay_dedup_accounting(FslhomesGenerator(params).days())
    return [(e.logical_bytes, e.physical_bytes, e.stub_bytes) for e in series]


def test_fig9_full_trace_accounting(benchmark):
    per_day = benchmark.pedantic(replay_accounting, args=(FULL_PARAMS,), rounds=1)
    logical, physical, stub = per_day[-1]
    saving = 1 - (physical + stub) / logical
    ratio = physical / stub
    paper_ratio = PAPER_PHYSICAL_GB / PAPER_STUB_GB
    benchmark.extra_info["total_saving"] = round(saving, 4)
    benchmark.extra_info["physical_to_stub"] = round(ratio, 3)
    save_result(
        "fig9",
        "fig9 replay (147 days, scale 1e-5): "
        f"saving={saving:.4f} (paper {PAPER_TOTAL_SAVING}), "
        f"physical:stub={ratio:.2f} (paper {paper_ratio:.2f})",
    )
    # Figure 9(a): overall saving.
    assert saving == pytest.approx(PAPER_TOTAL_SAVING, abs=0.01)
    # Figure 9(b): physical vs stub split.
    assert ratio == pytest.approx(paper_ratio, rel=0.35)

    # Shape: stub data grows steadily while physical flattens — by the
    # final third of the trace, stub accumulates faster than physical.
    mid_logical, mid_physical, mid_stub = per_day[97]
    tail_physical = physical - mid_physical
    tail_stub = stub - mid_stub
    assert tail_stub > 0.5 * tail_physical

    # Daily physical+stub is a tiny slice of daily logical (paper:
    # 5.52 GB/day of 290-680 GB/day).
    daily_overhead = (physical + stub) / len(per_day)
    daily_logical = logical / len(per_day)
    assert daily_overhead < 0.03 * daily_logical


def test_fig9_real_storage_engine(benchmark):
    """Replay through a real DataStore and cross-check the accounting."""

    def replay_engine():
        generator = FslhomesGenerator(ENGINE_PARAMS)
        store = DataStore()
        for snapshots in generator.days():
            for snapshot in snapshots:
                stubs = 0
                for chunk in snapshot.chunks:
                    full_fp = chunk.fingerprint + b"\x00" * 26
                    store.put_chunk(
                        full_fp,
                        chunk_bytes_from_fingerprint(chunk.fingerprint, chunk.size),
                    )
                    stubs += 1
                store.put_stub_file(
                    f"{snapshot.user}-day{snapshot.day}", b"\x00" * (stubs * STUB_SIZE)
                )
        store.flush()
        return store

    store = benchmark.pedantic(replay_engine, rounds=1)
    stats = store.stats
    accounting = replay_accounting(ENGINE_PARAMS)[-1]
    # The engine and the accounting must agree on physical bytes.
    assert stats.physical_bytes == accounting[1]
    assert stats.stub_bytes == accounting[2]
    save_result(
        "fig9",
        "fig9 engine check (15 days, scale 2e-6): "
        f"physical={stats.physical_bytes} stub={stats.stub_bytes} "
        f"containers={store.containers.sealed_containers}",
    )
