"""Component microbenchmarks.

Raw throughput of every primitive on the REED data path, to localize
bottlenecks and to quantify the Python-vs-OpenSSL substrate gap recorded
in DESIGN.md §3 (pure-Python AES vs HashCTR, RSA signing, Rabin
chunking, access-tree encryption).
"""

import pytest

from benchmarks.common import mbps, save_result
from repro.abe import access_tree as at
from repro.abe.cpabe import AttributeAuthority, abe_encrypt
from repro.aont.caont import caont_revert, caont_transform
from repro.chunking.rabin import rabin_chunks
from repro.core.schemes import get_scheme
from repro.crypto import blindrsa, shamir
from repro.crypto.aes import AES
from repro.crypto.cipher import get_cipher
from repro.crypto.drbg import HmacDrbg
from repro.crypto.hashing import sha256
from repro.crypto.rsa import fdh_sign, generate_keypair
from repro.util.units import KiB
from repro.workloads.synthetic import unique_data

KEY32 = bytes(range(32))
CHUNK_8K = unique_data(8 * KiB, seed=90)


@pytest.fixture(scope="module")
def rsa1024():
    return generate_keypair(1024, rng=HmacDrbg(b"bench-rsa"))


class TestHashing:
    def test_sha256_8k(self, benchmark):
        benchmark(sha256, CHUNK_8K)
        rate = mbps(len(CHUNK_8K), benchmark.stats["mean"])
        save_result("components", f"sha256 8KB: {rate:.0f} MB/s")


class TestCiphers:
    def test_aes_block(self, benchmark):
        aes = AES(KEY32)
        benchmark(aes.encrypt_block, b"\x00" * 16)
        rate = mbps(16, benchmark.stats["mean"])
        save_result("components", f"pure-python AES block: {rate:.3f} MB/s")

    def test_hashctr_mask_8k(self, benchmark):
        cipher = get_cipher("hashctr")
        benchmark(cipher.mask, KEY32, 8 * KiB)
        rate = mbps(8 * KiB, benchmark.stats["mean"])
        save_result("components", f"hashctr mask 8KB: {rate:.0f} MB/s")

    def test_aes256_ctr_mask_2k(self, benchmark):
        cipher = get_cipher("aes256")
        benchmark(cipher.mask, KEY32, 2 * KiB)
        rate = mbps(2 * KiB, benchmark.stats["mean"])
        save_result("components", f"pure-python AES-CTR mask 2KB: {rate:.3f} MB/s")


class TestAont:
    def test_caont_transform_8k(self, benchmark):
        benchmark(caont_transform, CHUNK_8K)

    def test_caont_roundtrip_8k(self, benchmark):
        package = caont_transform(CHUNK_8K)
        benchmark(caont_revert, package)


class TestSchemes:
    @pytest.mark.parametrize("scheme_name", ["basic", "enhanced"])
    def test_encrypt_8k(self, benchmark, scheme_name):
        scheme = get_scheme(scheme_name)
        benchmark(scheme.encrypt_chunk, CHUNK_8K, KEY32)
        rate = mbps(8 * KiB, benchmark.stats["mean"])
        save_result("components", f"{scheme_name} encrypt 8KB: {rate:.1f} MB/s")

    @pytest.mark.parametrize("scheme_name", ["basic", "enhanced"])
    def test_decrypt_8k(self, benchmark, scheme_name):
        scheme = get_scheme(scheme_name)
        split = scheme.encrypt_chunk(CHUNK_8K, KEY32)
        benchmark(scheme.decrypt_chunk, split.trimmed_package, split.stub)


class TestRsaOprf:
    def test_rsa_sign(self, benchmark, rsa1024):
        benchmark(fdh_sign, rsa1024, b"fingerprint")
        per_second = 1.0 / benchmark.stats["mean"]
        save_result(
            "components",
            f"1024-bit RSA FDH sign: {per_second:.0f}/s "
            "(paper key manager ~1600/s)",
        )

    def test_blind_unblind_roundtrip(self, benchmark, rsa1024):
        rng = HmacDrbg(b"blind")

        def oprf_client_side():
            blinded, state = blindrsa.blind(rsa1024.public, b"\x42" * 32, rng)
            signature = blindrsa.sign_blinded(rsa1024, blinded)
            return blindrsa.unblind(rsa1024.public, state, signature)

        benchmark(oprf_client_side)


class TestChunking:
    def test_rabin_throughput(self, benchmark):
        data = unique_data(256 * KiB, seed=91)
        benchmark.pedantic(lambda: list(rabin_chunks(data)), rounds=3)
        rate = mbps(len(data), benchmark.stats["mean"])
        save_result("components", f"rabin chunking: {rate:.2f} MB/s")


class TestAccessControl:
    @pytest.mark.parametrize("leaves", [10, 100, 500])
    def test_abe_encrypt_scaling(self, benchmark, leaves):
        authority = AttributeAuthority(master_secret=b"\x31" * 32)
        tree = at.or_of_identifiers([f"u{i}" for i in range(leaves)])
        wrap_keys = authority.wrap_keys_for(tree)
        rng = HmacDrbg(b"abe")
        benchmark(abe_encrypt, wrap_keys, tree, b"\x00" * 64, None, rng)
        benchmark.extra_info["leaves"] = leaves
        save_result(
            "components",
            f"access-tree encrypt {leaves} leaves: "
            f"{benchmark.stats['mean'] * 1e3:.2f} ms",
        )

    def test_shamir_split_recover(self, benchmark):
        rng = HmacDrbg(b"shamir")

        def roundtrip():
            shares = shamir.split_secret(12345, 3, 5, rng=rng)
            return shamir.recover_secret(shares[:3])

        assert benchmark(roundtrip) == 12345
